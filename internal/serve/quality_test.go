package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"eulerfd/internal/quality"
)

func getQuality(t *testing.T, base, id, query string) (int, quality.Report, []byte) {
	t.Helper()
	code, blob := doReq(t, "GET", base+"/v1/sessions/"+id+"/quality"+query, "")
	var doc quality.Report
	if code == http.StatusOK {
		if err := json.Unmarshal(blob, &doc); err != nil {
			t.Fatalf("decode quality: %v: %s", err, blob)
		}
	}
	return code, doc, blob
}

func TestQualityReport(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := readySession(t, ts.URL)
	code, doc, blob := getQuality(t, ts.URL, id, "")
	if code != http.StatusOK {
		t.Fatalf("quality: status %d: %s", code, blob)
	}
	if doc.K != 5 {
		t.Errorf("default k = %d, want 5", doc.K)
	}
	if len(doc.Attrs) != 5 || doc.Rows == 0 {
		t.Errorf("header = attrs %v rows %d", doc.Attrs, doc.Rows)
	}
	if doc.Version != 1 {
		t.Errorf("version = %d, want 1 after the initial job", doc.Version)
	}
	if len(doc.Ranked) == 0 {
		t.Fatal("empty ranking")
	}
	if len(doc.Violations) != len(doc.Repairs) {
		t.Errorf("%d violation entries vs %d repair entries", len(doc.Violations), len(doc.Repairs))
	}
	// Repeated queries answer identically (shared scorer, warm cache).
	code2, doc2, _ := getQuality(t, ts.URL, id, "")
	if code2 != http.StatusOK || !reflect.DeepEqual(doc, doc2) {
		t.Errorf("repeated quality query differed:\n%+v\n%+v", doc, doc2)
	}
}

func TestQualityKnobs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := readySession(t, ts.URL)
	code, doc, blob := getQuality(t, ts.URL, id, "?k=2&clusters=1&rows=1")
	if code != http.StatusOK {
		t.Fatalf("quality knobs: status %d: %s", code, blob)
	}
	if doc.K != 2 || len(doc.Ranked) > 2 {
		t.Errorf("k = %d, |ranked| = %d", doc.K, len(doc.Ranked))
	}
	for _, v := range doc.Violations {
		if len(v.Examples) > 1 {
			t.Errorf("%v: %d cluster examples, want ≤ 1", v.FD, len(v.Examples))
		}
		for _, ex := range v.Examples {
			if len(ex.Rows) > 1 {
				t.Errorf("%v: %d example rows, want ≤ 1", v.FD, len(ex.Rows))
			}
		}
	}
}

func TestQualityValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := readySession(t, ts.URL)
	for _, q := range []string{"?k=0", "?k=-3", "?k=x", "?clusters=0", "?rows=-1", "?rows=y"} {
		code, _, blob := getQuality(t, ts.URL, id, q)
		if code != http.StatusBadRequest {
			t.Errorf("quality%s: status %d, want 400: %s", q, code, blob)
		}
	}
	if code, _, _ := getQuality(t, ts.URL, "nope", ""); code != http.StatusNotFound {
		t.Errorf("unknown session: status %d", code)
	}
}

func TestQualityBeforeResult(t *testing.T) {
	_, ts := newTestServer(t, Config{CycleDelay: 50 * time.Millisecond})
	doc := submit(t, ts.URL, patientCSV)
	code, _, blob := getQuality(t, ts.URL, doc.Session, "")
	if code != http.StatusConflict {
		t.Errorf("quality before result: status %d: %s", code, blob)
	}
	waitState(t, ts.URL, doc.Session, stateReady)
	if code, _, _ := getQuality(t, ts.URL, doc.Session, ""); code != http.StatusOK {
		t.Errorf("quality after result: status %d", code)
	}
}

func TestQualityMinVersion(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := readySession(t, ts.URL)
	// Version 1 after the first job: min_version=2 must answer 412 with
	// the current version in the body.
	code, blob := doReq(t, "GET", ts.URL+"/v1/sessions/"+id+"/quality?min_version=2", "")
	if code != http.StatusPreconditionFailed {
		t.Fatalf("stale read: status %d, want 412: %s", code, blob)
	}
	// An append commits version 2; the same read now answers, and the
	// report is stamped with the version it describes.
	code, blob = doReq(t, "POST", ts.URL+"/v1/sessions/"+id+"/append", patientBatch)
	if code != http.StatusAccepted {
		t.Fatalf("append: status %d: %s", code, blob)
	}
	waitState(t, ts.URL, id, stateReady)
	code, doc, blob := getQuality(t, ts.URL, id, "?min_version=2")
	if code != http.StatusOK {
		t.Fatalf("post-append read: status %d: %s", code, blob)
	}
	if doc.Version != 2 {
		t.Errorf("report version = %d, want 2", doc.Version)
	}
}

// TestQualityCancelledReclaimsSlot mirrors the ensemble-query contract:
// a request with a dead context answers 499 and releases its job slot.
func TestQualityCancelledReclaimsSlot(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxJobs: 1})
	id := readySession(t, ts.URL)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/v1/sessions/"+id+"/quality", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("cancelled quality: status %d, want %d: %s", rec.Code, StatusClientClosedRequest, rec.Body)
	}

	// The single job slot is free again: a fresh query answers.
	if code, _, blob := getQuality(t, ts.URL, id, ""); code != http.StatusOK {
		t.Fatalf("quality after cancelled request: status %d: %s", code, blob)
	}
}
