package ensemble

import (
	"context"
	"os"
	"strconv"
	"strings"
	"testing"

	"eulerfd/internal/core"
	"eulerfd/internal/datasets"
	"eulerfd/internal/fdset"
	"eulerfd/internal/gen"
	"eulerfd/internal/preprocess"
)

func testEncoded(t testing.TB) *preprocess.Encoded {
	t.Helper()
	return preprocess.Encode(gen.UCITable("uci", 1500, 8, false, 4, 42))
}

func baseConfig(members int, seed uint64) Config {
	cfg := Config{Euler: core.DefaultOptions()}
	cfg.Euler.Ensemble = members
	cfg.Euler.Seed = seed
	return cfg
}

// ensembleWorkerCounts is the worker sweep of the determinism suite. PR
// CI runs the default {1, 4}; the nightly workflow widens it through
// ENSEMBLE_WORKERS (comma-separated counts, e.g. "1,4,8").
func ensembleWorkerCounts(t *testing.T) []int {
	env := os.Getenv("ENSEMBLE_WORKERS")
	if env == "" {
		return []int{1, 4}
	}
	var out []int
	for _, f := range strings.Split(env, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			t.Fatalf("ENSEMBLE_WORKERS: bad worker count %q", f)
		}
		out = append(out, w)
	}
	return out
}

func equalScored(a, b []ScoredFD) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEnsembleDeterminismAcrossWorkers is the package's core contract:
// the voted result — candidates, votes, confidences, g3 flags, and the
// summed counters — is identical for every pool size, i.e. independent
// of how members were scheduled and in which order they completed.
func TestEnsembleDeterminismAcrossWorkers(t *testing.T) {
	enc := testEncoded(t)
	cfg := baseConfig(5, 42)
	cfg.CrossCheck = true
	cfg.Euler.Workers = 1
	want, err := Discover(context.Background(), enc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range ensembleWorkerCounts(t) {
		cfg.Euler.Workers = workers
		got, err := Discover(context.Background(), enc, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !equalScored(want.FDs, got.FDs) {
			t.Errorf("workers=%d voted FDs differ from sequential", workers)
		}
		if want.Stats.PairsCompared != got.Stats.PairsCompared || want.Stats.AgreeSets != got.Stats.AgreeSets {
			t.Errorf("workers=%d summed counters differ: pairs %d vs %d, agreeSets %d vs %d",
				workers, got.Stats.PairsCompared, want.Stats.PairsCompared, got.Stats.AgreeSets, want.Stats.AgreeSets)
		}
		for i, m := range want.Stats.MemberFDs {
			if got.Stats.MemberFDs[i] != m {
				t.Errorf("workers=%d member %d cover size %d, want %d", workers, i, got.Stats.MemberFDs[i], m)
			}
		}
	}
}

// TestEnsembleSingleMemberMatchesDiscover pins the N=1 edge case: an
// ensemble of one with base seed S is the plain seeded run — the same FD
// set core.Discover produces, every candidate carrying 1/1 votes.
func TestEnsembleSingleMemberMatchesDiscover(t *testing.T) {
	enc := testEncoded(t)
	for _, seed := range []uint64{0, 7} {
		opt := core.DefaultOptions()
		opt.Seed = seed
		opt.Workers = 1
		plain, plainStats := core.DiscoverEncoded(enc, opt)

		res, err := Discover(context.Background(), enc, baseConfig(1, seed), nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Members != 1 || len(res.FDs) != plain.Len() {
			t.Fatalf("seed=%d: N=1 ensemble has %d candidates, plain run %d FDs", seed, len(res.FDs), plain.Len())
		}
		for _, f := range res.FDs {
			if !plain.Contains(f.FD) {
				t.Errorf("seed=%d: candidate %v not in plain run", seed, f.FD)
			}
			if f.Votes != 1 || f.Confidence != 1 {
				t.Errorf("seed=%d: candidate %v votes=%d conf=%v, want 1/1", seed, f.FD, f.Votes, f.Confidence)
			}
		}
		if res.Stats.PairsCompared != plainStats.PairsCompared {
			t.Errorf("seed=%d: N=1 pairs %d, plain %d", seed, res.Stats.PairsCompared, plainStats.PairsCompared)
		}
		if got := res.Majority(); !plain.Equal(got) {
			t.Errorf("seed=%d: N=1 majority differs from plain run", seed)
		}
	}
}

// TestEnsembleExhaustiveUnanimous: exhaustive members are exact under
// any seed, so every member computes the identical cover — unanimous
// votes, no suspects, and the majority is the exact result.
func TestEnsembleExhaustiveUnanimous(t *testing.T) {
	enc := testEncoded(t)
	cfg := baseConfig(3, 99)
	cfg.Euler.ExhaustWindows = true
	cfg.CrossCheck = true
	res, err := Discover(context.Background(), enc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.FDs {
		if f.Votes != 3 {
			t.Errorf("exhaustive candidate %v has %d/3 votes", f.FD, f.Votes)
		}
		if f.Suspect {
			t.Errorf("exact candidate %v flagged suspect (g3=%v)", f.FD, f.G3)
		}
	}
	if res.Stats.Suspects != 0 {
		t.Errorf("exhaustive ensemble reports %d suspects", res.Stats.Suspects)
	}
}

// TestEnsembleCrossCheckFlagsSuspects uses the chess corpus, where the
// default-threshold run reports an FD the exact cover refutes (the
// regress baseline pins its F1 at 0.8): the base-seed member keeps that
// candidate in the union, and the g3 cross-check must flag it.
func TestEnsembleCrossCheckFlagsSuspects(t *testing.T) {
	d, err := datasets.ByName("chess")
	if err != nil {
		t.Fatal(err)
	}
	enc := preprocess.Encode(d.Build())
	cfg := baseConfig(3, 0)
	cfg.CrossCheck = true
	res, err := Discover(context.Background(), enc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Suspects == 0 {
		t.Fatal("chess ensemble found no suspects; the base member's known false positive should be flagged")
	}
	for _, f := range res.FDs {
		if f.Suspect != (f.G3 > 0) {
			t.Errorf("candidate %v: Suspect=%v inconsistent with g3=%v", f.FD, f.Suspect, f.G3)
		}
	}
}

// TestEnsembleObserverSequence: the observer sees completed = 1..N in
// order with a constant total, regardless of scheduling.
func TestEnsembleObserverSequence(t *testing.T) {
	enc := testEncoded(t)
	cfg := baseConfig(4, 11)
	cfg.Euler.Workers = 4
	var seen []int
	obs := func(completed, total int) {
		if total != 4 {
			t.Errorf("observer total = %d, want 4", total)
		}
		seen = append(seen, completed)
	}
	if _, err := Discover(context.Background(), enc, cfg, obs); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("observer called %d times, want 4", len(seen))
	}
	for i, c := range seen {
		if c != i+1 {
			t.Fatalf("observer sequence %v, want 1..4", seen)
		}
	}
}

// TestEnsembleCancelledMemberFailsWhole: with a sequential pool the
// observer fires between members, so cancelling after the first member
// deterministically cancels the second — and the whole ensemble must
// fail with ctx.Err() and a nil result (no partial votes leak).
func TestEnsembleCancelledMemberFailsWhole(t *testing.T) {
	enc := testEncoded(t)
	cfg := baseConfig(3, 5)
	cfg.Euler.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := func(completed, total int) {
		if completed == 1 {
			cancel()
		}
	}
	res, err := Discover(ctx, enc, cfg, obs)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled ensemble returned a result with %d candidates", len(res.FDs))
	}
}

// TestEnsemblePreCancelled: an already-cancelled context fails before
// any member compares a pair.
func TestEnsemblePreCancelled(t *testing.T) {
	enc := testEncoded(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Discover(ctx, enc, baseConfig(2, 1), nil)
	if err != context.Canceled || res != nil {
		t.Fatalf("got (%v, %v), want (nil, context.Canceled)", res, err)
	}
}

// TestEnsembleValidates: option errors surface as *core.OptionError
// before any work.
func TestEnsembleValidates(t *testing.T) {
	enc := testEncoded(t)
	cfg := baseConfig(2, 1)
	cfg.Euler.Ensemble = -1
	_, err := Discover(context.Background(), enc, cfg, nil)
	var oe *core.OptionError
	if !errorsAs(err, &oe) || oe.Field != "Ensemble" {
		t.Fatalf("err = %v, want *core.OptionError on Ensemble", err)
	}
}

// errorsAs avoids importing errors just for one assertion helper.
func errorsAs(err error, target **core.OptionError) bool {
	oe, ok := err.(*core.OptionError)
	if ok {
		*target = oe
	}
	return ok
}

// TestEnsembleVoteTieBreakCanonical drives the merge directly: two
// members that disagree produce 1/2-vote candidates, which the strict-
// majority rule excludes on every machine alike, and SortByConfidence
// breaks equal-vote ties in canonical FD order.
func TestEnsembleVoteTieBreakCanonical(t *testing.T) {
	a := fdset.NewSet(fdset.NewFD([]int{0}, 2), fdset.NewFD([]int{1}, 3))
	b := fdset.NewSet(fdset.NewFD([]int{0}, 2), fdset.NewFD([]int{4}, 3))
	fds := mergeVotes([]*fdset.Set{a, b})
	if len(fds) != 3 {
		t.Fatalf("got %d candidates, want 3", len(fds))
	}
	res := &Result{Members: 2, FDs: fds}
	maj := res.Majority()
	if maj.Len() != 1 || !maj.Contains(fdset.NewFD([]int{0}, 2)) {
		t.Fatalf("majority = %v, want exactly {0}->2 (exact ties excluded)", maj.Slice())
	}
	SortByConfidence(fds)
	if fds[0].FD != fdset.NewFD([]int{0}, 2) {
		t.Fatalf("strongest candidate = %v, want {0}->2", fds[0].FD)
	}
	if !fdset.Less(fds[1].FD, fds[2].FD) {
		t.Fatalf("equal-vote tie not in canonical order: %v before %v", fds[1].FD, fds[2].FD)
	}
}

// TestEnsembleImpliedVote: a member whose minimal cover contains a
// generalization vouches for the specialization another member reports.
func TestEnsembleImpliedVote(t *testing.T) {
	gen1 := fdset.NewSet(fdset.NewFD([]int{0}, 3))    // A -> D
	spec := fdset.NewSet(fdset.NewFD([]int{0, 1}, 3)) // AB -> D
	other := fdset.NewSet(fdset.NewFD([]int{2}, 1))   // C -> B
	fds := mergeVotes([]*fdset.Set{gen1, spec, other})
	// gen1 vouches for its own A→D and for spec's AB→D (A→D implies it);
	// spec's AB→D says nothing about the more general A→D.
	want := map[string]int{"{0} -> 3": 1, "{0,1} -> 3": 2, "{2} -> 1": 1}
	for _, f := range fds {
		if want[f.FD.String()] != f.Votes {
			t.Errorf("%v votes = %d, want %d", f.FD, f.Votes, want[f.FD.String()])
		}
	}
}
