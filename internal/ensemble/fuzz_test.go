package ensemble

import (
	"testing"

	"eulerfd/internal/fdset"
)

// FuzzEnsembleVote drives the canonical vote merge with arbitrary member
// covers and checks its invariants: candidates come out in strictly
// canonical order, every candidate's vote count is within [1, members],
// confidence is exactly votes/members, and — the determinism property
// the ensemble rests on — reversing the member order changes nothing.
func FuzzEnsembleVote(f *testing.F) {
	f.Add([]byte{2, 0x03, 2, 0x05, 2, 0x03, 2})
	f.Add([]byte{3, 0x01, 4, 0x0f, 5})
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0])%5 + 1
		members := make([]*fdset.Set, n)
		for i := range members {
			members[i] = fdset.NewSet()
		}
		// Remaining bytes stream (lhsMask, rhs) pairs round-robin into
		// the members, over an 8-attribute universe.
		rest := data[1:]
		for k := 0; k+1 < len(rest); k += 2 {
			rhs := int(rest[k+1]) % 8
			var lhs fdset.AttrSet
			for a := 0; a < 8; a++ {
				if rest[k]&(1<<a) != 0 && a != rhs {
					lhs.Add(a)
				}
			}
			members[(k/2)%n].Add(fdset.FD{LHS: lhs, RHS: rhs})
		}

		fds := mergeVotes(members)
		for i, sf := range fds {
			if i > 0 && !fdset.Less(fds[i-1].FD, sf.FD) {
				t.Fatalf("candidates not in strict canonical order at %d: %v, %v", i, fds[i-1].FD, sf.FD)
			}
			if sf.Votes < 1 || sf.Votes > n {
				t.Fatalf("candidate %v has %d votes outside [1, %d]", sf.FD, sf.Votes, n)
			}
			if sf.Confidence != float64(sf.Votes)/float64(n) {
				t.Fatalf("candidate %v confidence %v != %d/%d", sf.FD, sf.Confidence, sf.Votes, n)
			}
			found := false
			for _, m := range members {
				if m.Contains(sf.FD) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("candidate %v is in no member cover", sf.FD)
			}
		}

		rev := make([]*fdset.Set, n)
		for i := range members {
			rev[n-1-i] = members[i]
		}
		fds2 := mergeVotes(rev)
		if !equalScored(fds, fds2) {
			t.Fatalf("vote merge depends on member order: %v vs %v", fds, fds2)
		}
	})
}
