// Package ensemble runs EulerFD under N seeded sampling schedules and
// votes: each member is one deterministic run (core.Options.Seed picks
// its schedule), members execute concurrently on the shared worker pool,
// and every FD any member reported gets a confidence — the fraction of
// members whose minimal cover implies it. A randomized approximation's
// single flat FD set hides which dependencies are schedule artifacts;
// the vote surfaces them (the Desbordante EulerFD exemplar returns
// 76/78/80 FDs for three seeds against 78 true ones — exactly the spread
// this package measures). Candidates can additionally be cross-checked
// against the exact g3 error on the full relation: g3 > 0 means the FD
// definitionally does not hold, a zero-false-positive suspect flag.
//
// Determinism contract (invariant I4 applies — the package is
// fdlint-gated): the result is a pure function of (relation, Config).
// Member seeds come from core.SeedSequence; members write only their own
// result slot (invariant I3); and the vote merge runs after the pool.Do
// barrier, on the coordinator, reading slots in member-index order — so
// neither Workers nor run-completion order can reach the output.
package ensemble

import (
	"context"
	"runtime"
	"time"

	"eulerfd/internal/afd"
	"eulerfd/internal/core"
	"eulerfd/internal/fdset"
	"eulerfd/internal/pool"
	"eulerfd/internal/preprocess"
	"eulerfd/internal/timing"
)

// Config configures an ensemble run.
type Config struct {
	// Euler is the per-member engine configuration. Three fields have
	// ensemble-level meaning: Ensemble is the member count N (≥ 1, with
	// 0 meaning 1), Seed is the base seed member seeds derive from
	// (core.SeedSequence; member 0 runs the base itself), and Workers
	// sizes the pool members run on (0 = all CPU cores) — each member
	// itself runs sequentially, so one pool.Do spans the whole ensemble.
	Euler core.Options
	// CrossCheck scores every candidate's g3 error on the full relation
	// after the vote. g3 > 0 proves the FD does not hold, so Suspect
	// flags are exact; the check costs one stripped-partition pass per
	// candidate through a shared afd.Scorer.
	CrossCheck bool
	// CacheSize bounds the cross-check scorer's partition cache (entries;
	// 0 selects the afd default). Ignored unless CrossCheck is set.
	CacheSize int
}

// ScoredFD is one voted candidate: an FD some member reported, with the
// fraction of members agreeing. Unlike fdset.ScoredFD's error score,
// Confidence is a belief — higher is better.
type ScoredFD struct {
	FD fdset.FD
	// Votes is how many members' minimal covers imply the FD — contain
	// it, or contain a generalization of it (a member that found A→C
	// also vouches for AB→C).
	Votes int
	// Confidence = Votes / Members, computed by one integer division per
	// candidate so it is bit-identical everywhere.
	Confidence float64
	// G3 is the candidate's exact g3 error on the full relation and
	// Suspect is G3 > 0 (the FD provably does not hold). Both are only
	// populated when Config.CrossCheck is set; see Result.CrossChecked.
	G3      float64
	Suspect bool
}

// Stats reports what an ensemble run did. Pair and agree-set counters
// sum over members; MemberFDs records each member's minimal cover size
// in member order (the spread is the randomization the vote averages).
type Stats struct {
	Rows          int           `json:"rows"`
	Cols          int           `json:"cols"`
	Members       int           `json:"members"`
	PairsCompared int           `json:"pairs_compared"`
	AgreeSets     int           `json:"agree_sets"`
	Candidates    int           `json:"candidates"`
	MajoritySize  int           `json:"majority_size"`
	Suspects      int           `json:"suspects"`
	MemberFDs     []int         `json:"member_fds"`
	Total         time.Duration `json:"total_ns"`
}

// Result is a completed ensemble run. FDs holds every candidate in
// canonical order (fdset.Less on the FD, ignoring confidence).
type Result struct {
	Members      int
	Seed         uint64
	CrossChecked bool
	FDs          []ScoredFD
	Stats        Stats
}

// Majority returns the minimized set of candidates a strict majority of
// members voted for. The inclusion rule is fixed — 2·Votes > Members —
// so an even ensemble's exact ties are excluded on every machine alike
// (the canonical tie-break), and minimization removes specializations
// whose generalization also carried the vote.
func (r *Result) Majority() *fdset.Set {
	s := fdset.NewSet()
	for _, f := range r.FDs {
		if 2*f.Votes > r.Members {
			s.Add(f.FD)
		}
	}
	return s.Minimize()
}

// Observer receives ensemble progress after each member run completes:
// completed counts finished members, total is the member count. Calls
// are serialized (one at a time) and completed is strictly increasing
// 1..total, so the observed sequence is deterministic even though which
// member finishes when is not; member identity is deliberately not
// exposed. A nil Observer is skipped.
type Observer func(completed, total int)

// memberSlot is one member's result, written only by that member's
// pool.Do callback (per-index confinement, invariant I3).
type memberSlot struct {
	fds   *fdset.Set
	stats core.Stats
	err   error
}

// Discover runs the ensemble on an encoded relation. It validates
// cfg.Euler and returns a *core.OptionError on an out-of-range field.
// Cancellation is cooperative: members check ctx at their double-cycle
// stage boundaries, and any member error — a cancelled ctx cancels all
// of them — fails the whole ensemble after the pool barrier, returning
// a nil Result so no partial votes can leak.
func Discover(ctx context.Context, enc *preprocess.Encoded, cfg Config, obs Observer) (*Result, error) {
	if err := cfg.Euler.Validate(); err != nil {
		return nil, err
	}
	start := timing.Start()
	n := cfg.Euler.Ensemble
	if n < 1 {
		n = 1
	}
	workers := cfg.Euler.Workers
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	seeds := core.SeedSequence(cfg.Euler.Seed, n)

	// One pool spans the ensemble: members are the unit of parallelism,
	// so each runs the engine's sequential path (Workers = 1 — pool
	// tasks must not call pool.Do).
	pl := pool.New(workers)
	defer pl.Close()

	slots := make([]memberSlot, n)
	var prog progress
	pl.Do(n, func(i int) {
		opt := cfg.Euler
		opt.Workers = 1
		opt.Ensemble = 0
		opt.Seed = seeds[i]
		slots[i].fds, slots[i].stats, slots[i].err = core.DiscoverEncodedContext(ctx, enc, opt, nil)
		prog.step(obs, n)
	})
	// Fail on the smallest erring member index: deterministic, and under
	// cancellation every member reports ctx.Err() anyway.
	for i := range slots {
		if slots[i].err != nil {
			return nil, slots[i].err
		}
	}

	members := make([]*fdset.Set, n)
	stats := Stats{Rows: enc.NumRows, Cols: len(enc.Attrs), Members: n, MemberFDs: make([]int, n)}
	for i := range slots {
		members[i] = slots[i].fds
		stats.MemberFDs[i] = slots[i].fds.Len()
		stats.PairsCompared += slots[i].stats.PairsCompared
		stats.AgreeSets += slots[i].stats.AgreeSets
	}

	fds := mergeVotes(members)
	res := &Result{Members: n, Seed: cfg.Euler.Seed, FDs: fds}
	if cfg.CrossCheck {
		res.CrossChecked = true
		scorer := afd.NewScorer(enc, cfg.CacheSize)
		for i := range res.FDs {
			g3 := scorer.Score(afd.G3, res.FDs[i].FD.LHS, res.FDs[i].FD.RHS)
			res.FDs[i].G3 = g3
			res.FDs[i].Suspect = g3 > 0
			if res.FDs[i].Suspect {
				stats.Suspects++
			}
		}
	}
	stats.Candidates = len(fds)
	stats.MajoritySize = res.Majority().Len()
	start.SetTo(&stats.Total)
	res.Stats = stats
	return res, nil
}
