package ensemble

import (
	"sort"
	"sync"

	"eulerfd/internal/fdset"
)

// mergeVotes is the canonical vote merge: candidates are the union of
// the members' minimal covers in canonical (fdset.Less) order, and a
// member votes for a candidate when its cover implies it — contains the
// FD, or a generalization of it. The whole computation is a pure
// function of the member sets as *sets*: permuting the members permutes
// nothing (votes are counts), so run-completion order cannot reach the
// output. Confidence is one integer division per candidate.
func mergeVotes(members []*fdset.Set) []ScoredFD {
	n := len(members)
	union := fdset.NewSet()
	for _, m := range members {
		m.ForEach(func(f fdset.FD) { union.Add(f) })
	}
	cands := union.Slice()
	covers := make([][]fdset.FD, n)
	for i, m := range members {
		covers[i] = m.Slice()
	}
	out := make([]ScoredFD, 0, len(cands))
	for _, f := range cands {
		votes := 0
		for i := range members {
			if members[i].Contains(f) || implies(covers[i], f) {
				votes++
			}
		}
		out = append(out, ScoredFD{FD: f, Votes: votes, Confidence: float64(votes) / float64(n)})
	}
	return out
}

// implies reports whether some FD of the cover generalizes f: same RHS,
// LHS a subset. A minimal cover that found A→C has proven AB→C along
// with it, so the member agrees with the candidate even though its own
// minimization removed the specialization.
func implies(cover []fdset.FD, f fdset.FD) bool {
	for _, g := range cover {
		if g.RHS == f.RHS && g.LHS.IsSubsetOf(f.LHS) {
			return true
		}
	}
	return false
}

// SortByConfidence reorders candidates for presentation: descending
// vote count, ties broken canonically (fdset.Less). It compares the
// integer Votes, never the derived float, so the order is exact.
// Result.FDs itself stays in canonical order; this is for displays that
// lead with the strongest candidates.
func SortByConfidence(fds []ScoredFD) {
	sort.Slice(fds, func(i, j int) bool {
		if fds[i].Votes != fds[j].Votes {
			return fds[i].Votes > fds[j].Votes
		}
		return fdset.Less(fds[i].FD, fds[j].FD)
	})
}

// progress serializes Observer calls: members finish in scheduling
// order, but the observer sees the deterministic sequence 1..total. The
// observer runs under the lock, so a slow observer slows members but
// never races them.
type progress struct {
	mu   sync.Mutex
	done int
}

func (p *progress) step(obs Observer, total int) {
	if obs == nil {
		return
	}
	p.mu.Lock()
	p.done++
	obs(p.done, total)
	p.mu.Unlock()
}
