package cover

import (
	"math/rand"
	"reflect"
	"testing"

	"eulerfd/internal/fdset"
)

func TestNCoverAddMinimizes(t *testing.T) {
	n := NewNCover(5, nil)
	a, b, g, m := 1, 2, 3, 4
	rhs := 0
	// Figure 4 sequence: ABM, BG, BGM, AG for RHS N.
	if !n.Add(fdset.NewFD([]int{a, b, m}, rhs)) {
		t.Error("first add should change cover")
	}
	if !n.Add(fdset.NewFD([]int{b, g}, rhs)) {
		t.Error("BG is not specialized yet")
	}
	if !n.Add(fdset.NewFD([]int{b, g, m}, rhs)) {
		t.Error("BGM should be added (it specializes BG)")
	}
	if n.Add(fdset.NewFD([]int{b, g}, rhs)) {
		t.Error("BG is now specialized by BGM, must be rejected")
	}
	if !n.Add(fdset.NewFD([]int{a, g}, rhs)) {
		t.Error("AG should be added")
	}
	if n.Size() != 3 {
		t.Fatalf("size = %d, want 3 (ABM, BGM, AG)", n.Size())
	}
	got := n.FDs()
	want := []fdset.FD{
		fdset.NewFD([]int{a, g}, rhs),
		fdset.NewFD([]int{a, b, m}, rhs),
		fdset.NewFD([]int{b, g, m}, rhs),
	}
	fdset.SortFDs(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("FDs = %v, want %v", got, want)
	}
	if !n.Covers(fdset.NewFD([]int{b, g}, rhs)) || n.Covers(fdset.NewFD([]int{a, b, g}, rhs)) {
		t.Error("Covers wrong")
	}
}

func TestNCoverAddAllSortsByLength(t *testing.T) {
	n := NewNCover(6, nil)
	batch := []fdset.FD{
		fdset.NewFD([]int{1}, 0),
		fdset.NewFD([]int{1, 2, 3}, 0),
		fdset.NewFD([]int{1, 2}, 0),
	}
	added := n.AddAll(batch)
	// Longest first: {1,2,3} added, then {1,2} and {1} rejected.
	if added != 1 || n.Size() != 1 {
		t.Errorf("added = %d size = %d, want 1/1", added, n.Size())
	}
}

func TestAttrFrequencyRank(t *testing.T) {
	nonFDs := []fdset.FD{
		fdset.NewFD([]int{0, 1}, 3),
		fdset.NewFD([]int{1}, 3),
		fdset.NewFD([]int{1, 2}, 0),
	}
	rank := AttrFrequencyRank(4, nonFDs)
	// freq: attr0=1, attr1=3, attr2=1, attr3=0 → order 3,0,2,1 (stable).
	if rank[3] != 0 || rank[1] != 3 {
		t.Errorf("rank = %v", rank)
	}
	if got := AttrFrequencyRank(3, nil); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("empty rank = %v", got)
	}
}

func TestPCoverInitial(t *testing.T) {
	p := NewPCover(3, nil)
	if p.Size() != 3 {
		t.Fatalf("initial size = %d", p.Size())
	}
	fds := p.FDs()
	for rhs := 0; rhs < 3; rhs++ {
		if !fds.Contains(fdset.FD{LHS: fdset.EmptySet(), RHS: rhs}) {
			t.Errorf("missing initial candidate for rhs %d", rhs)
		}
	}
}

func TestPCoverInvertRunningExample(t *testing.T) {
	// Figure 5: universe N,A,B,G,M = 0..4, RHS N. Non-FDs MBG, AG, AMB.
	n, a, b, g, m := 0, 1, 2, 3, 4
	_ = n
	p := NewPCover(5, nil)
	p.Invert(fdset.NewFD([]int{m, b, g}, 0))
	// After Fig 5(a): the only candidate for RHS N is A → N.
	tree := p.Tree(0)
	if tree.Size() != 1 || !tree.Contains(fdset.NewAttrSet(a)) {
		t.Fatalf("after MBG: %v", tree.Sets())
	}
	p.Invert(fdset.NewFD([]int{a, g}, 0))
	// After Fig 5(b): AB → N and AM → N.
	want := []fdset.AttrSet{fdset.NewAttrSet(a, b), fdset.NewAttrSet(a, m)}
	got := tree.Sets()
	sortSets(got)
	sortSets(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after AG: %v, want %v", got, want)
	}
	p.Invert(fdset.NewFD([]int{a, m, b}, 0))
	// After Fig 5(c): ABG → N and AMG → N.
	want = []fdset.AttrSet{fdset.NewAttrSet(a, b, g), fdset.NewAttrSet(a, m, g)}
	got = tree.Sets()
	sortSets(got)
	sortSets(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after AMB: %v, want %v", got, want)
	}
}

// bruteForcePositiveCover computes, for a universe of m attributes and a
// list of maximal non-FDs per RHS, the minimal LHSs X (for each RHS) such
// that X ⊄ any non-FD LHS — by exhaustive enumeration.
func bruteForcePositiveCover(m int, nonFDs []fdset.FD) *fdset.Set {
	byRHS := map[int][]fdset.AttrSet{}
	for _, f := range nonFDs {
		byRHS[f.RHS] = append(byRHS[f.RHS], f.LHS)
	}
	out := fdset.NewSet()
	for rhs := 0; rhs < m; rhs++ {
		var valid []fdset.AttrSet
		for mask := 0; mask < 1<<m; mask++ {
			var x fdset.AttrSet
			for i := 0; i < m; i++ {
				if mask&(1<<i) != 0 {
					x.Add(i)
				}
			}
			if x.Has(rhs) {
				continue
			}
			bad := false
			for _, nl := range byRHS[rhs] {
				if x.IsSubsetOf(nl) {
					bad = true
					break
				}
			}
			if !bad {
				valid = append(valid, x)
			}
		}
		for _, x := range valid {
			minimal := true
			for _, y := range valid {
				if y != x && y.IsSubsetOf(x) {
					minimal = false
					break
				}
			}
			if minimal {
				out.Add(fdset.FD{LHS: x, RHS: rhs})
			}
		}
	}
	return out
}

func TestPCoverInvertAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for iter := 0; iter < 80; iter++ {
		m := 3 + r.Intn(4) // 3..6 attributes
		var nonFDs []fdset.FD
		nc := NewNCover(m, nil)
		for k := 0; k < 1+r.Intn(8); k++ {
			rhs := r.Intn(m)
			var lhs fdset.AttrSet
			for a := 0; a < m; a++ {
				if a != rhs && r.Intn(2) == 0 {
					lhs.Add(a)
				}
			}
			nc.Add(fdset.FD{LHS: lhs, RHS: rhs})
		}
		nonFDs = nc.FDs()
		p := NewPCover(m, nil)
		p.InvertAll(nonFDs)
		want := bruteForcePositiveCover(m, nonFDs)
		got := p.FDs()
		if !got.Equal(want) {
			t.Fatalf("m=%d nonFDs=%v:\n got %v\nwant %v", m, nonFDs, got.Slice(), want.Slice())
		}
	}
}

func TestPCoverInvertIdempotent(t *testing.T) {
	p := NewPCover(4, nil)
	f := fdset.NewFD([]int{1, 2}, 0)
	p.Invert(f)
	before := p.FDs()
	if added := p.Invert(f); added != 0 {
		t.Errorf("second Invert added %d candidates", added)
	}
	if !p.FDs().Equal(before) {
		t.Error("second Invert changed the cover")
	}
}

func TestPCoverKeyLHSKept(t *testing.T) {
	// With non-FDs covering every proper subset, the only valid LHS for
	// RHS 0 is the full complement {1,2}.
	p := NewPCover(3, nil)
	p.Invert(fdset.NewFD([]int{1}, 0))
	p.Invert(fdset.NewFD([]int{2}, 0))
	tree := p.Tree(0)
	if tree.Size() != 1 || !tree.Contains(fdset.NewAttrSet(1, 2)) {
		t.Errorf("candidates = %v", tree.Sets())
	}
}

func TestInvertLiteralMatchesInvert(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	for iter := 0; iter < 60; iter++ {
		m := 3 + r.Intn(5)
		var nonFDs []fdset.FD
		for k := 0; k < 1+r.Intn(8); k++ {
			rhs := r.Intn(m)
			var lhs fdset.AttrSet
			for a := 0; a < m; a++ {
				if a != rhs && r.Intn(2) == 0 {
					lhs.Add(a)
				}
			}
			nonFDs = append(nonFDs, fdset.FD{LHS: lhs, RHS: rhs})
		}
		fast, slow := NewPCover(m, nil), NewPCover(m, nil)
		for _, f := range nonFDs {
			fast.Invert(f)
			slow.InvertLiteral(f)
		}
		if !fast.FDs().Equal(slow.FDs()) {
			t.Fatalf("iter %d: Invert and InvertLiteral diverge on %v", iter, nonFDs)
		}
	}
}

func TestInvertAllParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	for iter := 0; iter < 20; iter++ {
		m := 4 + r.Intn(6)
		var nonFDs []fdset.FD
		for k := 0; k < 5+r.Intn(20); k++ {
			rhs := r.Intn(m)
			var lhs fdset.AttrSet
			for a := 0; a < m; a++ {
				if a != rhs && r.Intn(2) == 0 {
					lhs.Add(a)
				}
			}
			nonFDs = append(nonFDs, fdset.FD{LHS: lhs, RHS: rhs})
		}
		seq, par := NewPCover(m, nil), NewPCover(m, nil)
		a := seq.InvertAll(nonFDs)
		b := par.InvertAllParallel(nonFDs, 4)
		if a != b {
			t.Fatalf("added counts differ: %d vs %d", a, b)
		}
		if !seq.FDs().Equal(par.FDs()) {
			t.Fatalf("parallel inversion diverged")
		}
	}
	// workers <= 1 falls back to sequential.
	p := NewPCover(3, nil)
	if p.InvertAllParallel([]fdset.FD{fdset.NewFD([]int{1}, 0)}, 0) == 0 {
		t.Error("fallback path added nothing")
	}
}
