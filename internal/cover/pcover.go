package cover

import (
	"eulerfd/internal/fdset"
	"eulerfd/internal/pool"
)

// PCover is the positive cover: for every RHS attribute, the tree of
// minimal FD-candidate LHSs that are consistent with every non-FD inverted
// so far. It starts from the most general candidates ∅ → A and is refined
// by Invert (Algorithm 3).
type PCover struct {
	trees []*Tree
	ncols int
}

// NewPCover builds a positive cover over ncols attributes initialized with
// the most general candidate ∅ → A for every attribute A (Lines 1–2).
// rank orders split attributes as in NewTree (nil = natural order).
func NewPCover(ncols int, rank []int) *PCover {
	p := &PCover{trees: make([]*Tree, ncols), ncols: ncols}
	for i := range p.trees {
		p.trees[i] = NewTree(rank)
		p.trees[i].Add(fdset.EmptySet())
	}
	return p
}

// NumCols returns the number of attributes the cover spans.
func (p *PCover) NumCols() int { return p.ncols }

// Size returns the number of candidate FDs currently stored.
func (p *PCover) Size() int {
	n := 0
	for _, t := range p.trees {
		n += t.Size()
	}
	return n
}

// Invert removes every candidate invalidated by the non-FD (candidates
// whose LHS is a subset of the non-FD's LHS, by Lemma 1) and replaces each
// with its minimal specializations that escape the non-FD. It returns the
// number of candidates added, which feeds the GR_Pcover stopping criterion.
//
// This is Function invert of Algorithm 3 with the classical Fdep
// refinement: removed generalizations spawn only candidates
// general.lhs ∪ {attr} for attributes *outside* nonFD.lhs ∪ {rhs}.
// Algorithm 3 as printed also spawns attributes inside nonFD.lhs, whose
// offspring remain generalizations of the non-FD and are immediately
// re-found, removed, and re-expanded by the loop — converging to exactly
// the same cover (their eventual escapes are supersets of the direct
// escapes and fail the minimality check). Skipping them changes nothing
// in the output and removes the quadratic churn on FD-dense relations;
// BenchmarkAblationPaperInversion quantifies the gap.
func (p *PCover) Invert(nonFD fdset.FD) int {
	t := p.trees[nonFD.RHS]
	// All invalidated generalizations come out in one traversal. Because
	// every replacement candidate contains an attribute outside the
	// non-FD's LHS, none of them is itself a generalization of the
	// non-FD, so a single removal pass suffices.
	generals := t.RemoveSubsets(nonFD.LHS)
	added := 0
	// Any blocking subset of a candidate general ∪ {attr} must contain
	// attr: the tree is an antichain, so proper subsets of general are
	// not stored, and general itself was just removed. A blocker is
	// therefore S ∪ {attr} for some S ⊆ general. For small generals it is
	// far cheaper to enumerate those 2^|general| sets against the tree's
	// membership table than to search the tree.
	const enumLimit = 6
	var subsets []fdset.AttrSet
	for _, general := range generals {
		attrs := general.Attrs()
		subsets = subsets[:0]
		if len(attrs) <= enumLimit {
			for mask := 0; mask < 1<<len(attrs); mask++ {
				var sub fdset.AttrSet
				for b := 0; b < len(attrs); b++ {
					if mask&(1<<b) != 0 {
						sub.Add(attrs[b])
					}
				}
				subsets = append(subsets, sub)
			}
		}
		for attr := 0; attr < p.ncols; attr++ {
			if attr == nonFD.RHS || nonFD.LHS.Has(attr) {
				continue
			}
			candidate := general.With(attr)
			blocked := false
			if len(subsets) > 0 {
				for _, sub := range subsets {
					if t.Contains(sub.With(attr)) {
						blocked = true
						break
					}
				}
			} else {
				blocked = t.ContainsSubsetWithAttr(candidate, attr)
			}
			if blocked {
				continue
			}
			t.Add(candidate)
			added++
		}
	}
	return added
}

// InvertLiteral is Function invert of Algorithm 3 exactly as printed in
// the paper: removed generalizations spawn candidates for every attribute
// outside general.lhs ∪ {rhs}, including attributes still inside the
// non-FD's LHS (those offspring are re-found and removed by the loop).
// Kept for the inversion ablation; produces the same cover as Invert.
func (p *PCover) InvertLiteral(nonFD fdset.FD) int {
	t := p.trees[nonFD.RHS]
	added := 0
	for {
		general, ok := t.FindSubset(nonFD.LHS)
		if !ok {
			break
		}
		t.Remove(general)
		for attr := 0; attr < p.ncols; attr++ {
			if attr == nonFD.RHS || general.Has(attr) {
				continue
			}
			candidate := general.With(attr)
			if t.ContainsSubset(candidate) {
				continue
			}
			t.Add(candidate)
			added++
		}
	}
	return added
}

// InvertAll applies Invert over a batch of non-FDs and returns the total
// number of candidates added.
func (p *PCover) InvertAll(nonFDs []fdset.FD) int {
	added := 0
	for _, f := range nonFDs {
		added += p.Invert(f)
	}
	return added
}

// InvertAllParallel is InvertAll sharded by RHS on a transient pool of
// workers goroutines: every per-RHS tree is touched by exactly one worker,
// so no locking is needed, and the final cover is identical to the
// sequential result (the cover is determined by the set of inverted
// non-FDs, not their order). workers ≤ 1 falls back to the sequential
// path. Callers that already own a pool should use InvertAllPool.
func (p *PCover) InvertAllParallel(nonFDs []fdset.FD, workers int) int {
	pl := pool.New(workers)
	defer pl.Close()
	return p.InvertAllPool(nonFDs, pl)
}

// InvertAllPool is InvertAll sharded by RHS over a shared worker pool (nil
// pool = sequential). Per-shard added counts land in a private results
// slot, so no synchronization beyond the pool's own join is needed.
func (p *PCover) InvertAllPool(nonFDs []fdset.FD, pl *pool.Pool) int {
	if pl == nil {
		return p.InvertAll(nonFDs)
	}
	byRHS := make([][]fdset.FD, p.ncols)
	for _, f := range nonFDs {
		byRHS[f.RHS] = append(byRHS[f.RHS], f)
	}
	shards := byRHS[:0]
	for _, shard := range byRHS {
		if len(shard) > 0 {
			shards = append(shards, shard)
		}
	}
	results := make([]int, len(shards))
	pl.Do(len(shards), func(k int) {
		n := 0
		for _, f := range shards[k] {
			n += p.Invert(f)
		}
		results[k] = n
	})
	added := 0
	for _, n := range results {
		added += n
	}
	return added
}

// Rebuild re-derives the per-RHS candidate tree from scratch: reset to
// the most general candidate ∅ and invert every given non-FD LHS. It is
// the retirement patch of incremental maintenance — when deletes retire
// non-FDs, inversion cannot run backwards (candidates destroyed by the
// retired set must reappear), so the affected RHS re-inverts from the
// patched negative cover while every other RHS tree is untouched. The
// result is independent of the order of nonFDs (the cover is determined
// by the set of inverted non-FDs), and touching only trees[rhs] makes
// Rebuild safe to run for distinct RHS values concurrently.
func (p *PCover) Rebuild(rhs int, nonFDs []fdset.AttrSet) {
	t := NewTree(p.trees[rhs].rank)
	t.Add(fdset.EmptySet())
	p.trees[rhs] = t
	for _, lhs := range nonFDs {
		p.Invert(fdset.FD{LHS: lhs, RHS: rhs})
	}
}

// FDs returns the candidate set as minimal, non-trivial FDs. Candidates
// whose LHS covers every other attribute are kept: a key is a valid LHS.
func (p *PCover) FDs() *fdset.Set {
	s := fdset.NewSet()
	for rhs, t := range p.trees {
		t.ForEach(func(lhs fdset.AttrSet) bool {
			s.Add(fdset.FD{LHS: lhs, RHS: rhs})
			return true
		})
	}
	return s
}

// Tree exposes the per-RHS candidate tree.
func (p *PCover) Tree(rhs int) *Tree { return p.trees[rhs] }
