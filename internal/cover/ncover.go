package cover

import (
	"sort"

	"eulerfd/internal/fdset"
	"eulerfd/internal/pool"
)

// NCover is the negative cover: for every RHS attribute, the tree of
// maximal non-FD LHSs observed so far. By Lemma 1 a non-FD X ↛ A implies
// Y ↛ A for every Y ⊂ X, so storing only maximal LHSs loses nothing while
// keeping the trees small (Algorithm 2).
type NCover struct {
	trees []*Tree
	ncols int
	size  int
}

// NewNCover builds an empty negative cover over ncols attributes. rank
// orders split attributes in every per-RHS tree (nil = natural order).
func NewNCover(ncols int, rank []int) *NCover {
	n := &NCover{trees: make([]*Tree, ncols), ncols: ncols}
	for i := range n.trees {
		n.trees[i] = NewTree(rank)
	}
	return n
}

// NumCols returns the number of attributes the cover spans.
func (n *NCover) NumCols() int { return n.ncols }

// Size returns the number of stored maximal non-FDs.
func (n *NCover) Size() int { return n.size }

// Add inserts the non-FD into the cover. It reports whether the cover
// changed: false when an equal or specializing non-FD was already present.
// Generalizations of the new non-FD are discarded (Lines 2–5, Alg. 2).
func (n *NCover) Add(nonFD fdset.FD) bool {
	added, _ := n.AddTracked(nonFD)
	return added
}

// AddTracked is Add, additionally returning the LHSs of the stored
// non-FDs (same RHS) that the new entry superseded. EulerFD's double
// cycle uses this to drop superseded entries from its pending-inversion
// queue: inverting a generalization whose specialization is already known
// only creates candidates the specialization immediately destroys.
func (n *NCover) AddTracked(nonFD fdset.FD) (added bool, superseded []fdset.AttrSet) {
	t := n.trees[nonFD.RHS]
	if t.ContainsSuperset(nonFD.LHS) {
		return false, nil
	}
	superseded = t.RemoveSubsets(nonFD.LHS)
	t.Add(nonFD.LHS)
	n.size += 1 - len(superseded)
	return true, superseded
}

// AddEvent records one admission performed by AddTrackedBatch: the
// admitted non-FD and the stored LHSs (same RHS) it superseded.
type AddEvent struct {
	NonFD      fdset.FD
	Superseded []fdset.AttrSet
}

// AddTrackedBatch admits a batch of non-FDs, sharded by RHS across the
// worker pool: per-RHS trees are independent (the same property inversion
// exploits), so each shard is processed by exactly one worker with no
// locking. Events are reported grouped by ascending RHS and, within one
// RHS, in batch order — exactly the per-tree effect of sequential
// AddTracked calls — so the resulting cover, the admission count, and the
// event set are identical for every worker count, including the nil
// (sequential) pool.
func (n *NCover) AddTrackedBatch(nonFDs []fdset.FD, p *pool.Pool) (added int, events []AddEvent) {
	byRHS := make([][]fdset.FD, n.ncols)
	for _, f := range nonFDs {
		byRHS[f.RHS] = append(byRHS[f.RHS], f)
	}
	shards := byRHS[:0]
	for _, shard := range byRHS {
		if len(shard) > 0 {
			shards = append(shards, shard)
		}
	}
	type shardResult struct {
		events    []AddEvent
		added     int
		sizeDelta int
	}
	results := make([]shardResult, len(shards))
	p.Do(len(shards), func(k int) {
		r := &results[k]
		for _, f := range shards[k] {
			t := n.trees[f.RHS]
			if t.ContainsSuperset(f.LHS) {
				continue
			}
			superseded := t.RemoveSubsets(f.LHS)
			t.Add(f.LHS)
			r.added++
			r.sizeDelta += 1 - len(superseded)
			r.events = append(r.events, AddEvent{NonFD: f, Superseded: superseded})
		}
	})
	for _, r := range results {
		added += r.added
		n.size += r.sizeDelta
		events = append(events, r.events...)
	}
	return added, events
}

// RemoveLHS removes the stored maximal non-FD lhs ↛ rhs, reporting
// whether it was present. Incremental maintenance calls it when the last
// witness of a maximal non-FD dies (core.Incremental delete/update): the
// set is no longer evidenced and must leave the cover before the affected
// region is re-inverted.
func (n *NCover) RemoveLHS(rhs int, lhs fdset.AttrSet) bool {
	if !n.trees[rhs].Remove(lhs) {
		return false
	}
	n.size--
	return true
}

// Readmit re-admits a still-witnessed non-FD after retirements freed its
// region: it is stored unless a stored superset already covers it. Unlike
// AddTracked it never removes subsets — callers admit candidates in
// descending cardinality, and a candidate that is a subset of a removed
// maximal set cannot strictly contain any surviving stored set (the cover
// is an antichain), so there is nothing to supersede.
func (n *NCover) Readmit(rhs int, lhs fdset.AttrSet) bool {
	t := n.trees[rhs]
	if t.ContainsSuperset(lhs) {
		return false
	}
	t.Add(lhs)
	n.size++
	return true
}

// AddAll inserts a batch of non-FDs sorted in decreasing LHS length (the
// order Algorithm 2 prescribes to minimize tree modifications) and returns
// the number that changed the cover.
func (n *NCover) AddAll(nonFDs []fdset.FD) int {
	sorted := append([]fdset.FD(nil), nonFDs...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].LHS.Count() > sorted[j].LHS.Count()
	})
	added := 0
	for _, f := range sorted {
		if n.Add(f) {
			added++
		}
	}
	return added
}

// Covers reports whether the non-FD is implied by the cover, i.e. whether
// some stored non-FD specializes it.
func (n *NCover) Covers(nonFD fdset.FD) bool {
	return n.trees[nonFD.RHS].ContainsSuperset(nonFD.LHS)
}

// Tree exposes the per-RHS tree, used by the inversion module.
func (n *NCover) Tree(rhs int) *Tree { return n.trees[rhs] }

// FDs enumerates the stored maximal non-FDs.
func (n *NCover) FDs() []fdset.FD {
	var out []fdset.FD
	for rhs, t := range n.trees {
		t.ForEach(func(s fdset.AttrSet) bool {
			out = append(out, fdset.FD{LHS: s, RHS: rhs})
			return true
		})
	}
	fdset.SortFDs(out)
	return out
}

// AttrFrequencyRank computes, from a sample of non-FDs, the split-priority
// permutation the paper prescribes: attributes are ranked by ascending
// frequency of appearance in non-FD LHSs, so rare attributes discriminate
// close to the root.
func AttrFrequencyRank(ncols int, nonFDs []fdset.FD) []int {
	freq := make([]int, ncols)
	for _, f := range nonFDs {
		f.LHS.ForEach(func(a int) bool {
			if a < ncols {
				freq[a]++
			}
			return true
		})
	}
	idx := make([]int, ncols)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return freq[idx[i]] < freq[idx[j]] })
	rank := make([]int, ncols)
	for pos, a := range idx {
		rank[a] = pos
	}
	return rank
}
