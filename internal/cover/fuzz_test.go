package cover

import (
	"testing"

	"eulerfd/internal/fdset"
)

// fuzzNonFDs decodes a byte stream into a bounded batch of non-trivial
// non-FDs over ncols attributes: each pair of bytes is (LHS mask, RHS).
func fuzzNonFDs(data []byte, ncols int) []fdset.FD {
	const maxFDs = 64
	var out []fdset.FD
	for i := 0; i+1 < len(data) && len(out) < maxFDs; i += 2 {
		rhs := int(data[i+1]) % ncols
		var lhs fdset.AttrSet
		for b := 0; b < ncols; b++ {
			if data[i]&(1<<b) != 0 && b != rhs {
				lhs.Add(b)
			}
		}
		out = append(out, fdset.FD{LHS: lhs, RHS: rhs})
	}
	return out
}

// FuzzTreeInsertInvert drives arbitrary non-FD batches through the
// negative cover and both inversion variants, checking the structural
// invariants the discovery loop depends on: stored LHS sets form an
// antichain, every observed non-FD stays covered, and Invert agrees with
// the paper-literal InvertLiteral reference.
func FuzzTreeInsertInvert(f *testing.F) {
	f.Add([]byte{0b0011, 2, 0b0111, 2, 0b0001, 0})
	f.Add([]byte{0xff, 0, 0x0f, 1, 0xf0, 1, 0x55, 3})
	f.Add([]byte{0, 0, 0, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const ncols = 8
		nonFDs := fuzzNonFDs(data, ncols)
		if len(nonFDs) == 0 {
			t.Skip()
		}

		nc := NewNCover(ncols, nil)
		for _, nf := range nonFDs {
			nc.Add(nf)
		}
		total := 0
		for rhs := 0; rhs < ncols; rhs++ {
			sets := nc.Tree(rhs).Sets()
			total += len(sets)
			for i, a := range sets {
				for j, b := range sets {
					if i != j && a.IsSubsetOf(b) {
						t.Fatalf("rhs %d: stored LHSs not an antichain: %v ⊆ %v", rhs, a, b)
					}
				}
			}
			for _, s := range sets {
				if !nc.Tree(rhs).Contains(s) {
					t.Fatalf("rhs %d: Sets() returned %v but Contains is false", rhs, s)
				}
			}
		}
		if total != nc.Size() {
			t.Fatalf("Size() = %d, trees hold %d sets", nc.Size(), total)
		}
		for _, nf := range nonFDs {
			if !nc.Covers(nf) {
				t.Fatalf("cover lost observed non-FD %v", nf)
			}
			// Maximality: the covering witness must be a stored superset.
			found := false
			for _, s := range nc.Tree(nf.RHS).Sets() {
				if nf.LHS.IsSubsetOf(s) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("Covers(%v) true but no stored superset", nf)
			}
		}

		// Both inversion variants must refine the positive cover to the
		// same candidate set (the optimized Invert skips churn, not FDs).
		pcFast := NewPCover(ncols, nil)
		pcRef := NewPCover(ncols, nil)
		for _, nf := range nonFDs {
			pcFast.Invert(nf)
			pcRef.InvertLiteral(nf)
		}
		if !pcFast.FDs().Equal(pcRef.FDs()) {
			t.Fatalf("Invert and InvertLiteral diverged:\nfast: %v\nref:  %v",
				pcFast.FDs().Slice(), pcRef.FDs().Slice())
		}
		for rhs := 0; rhs < ncols; rhs++ {
			cands := pcFast.Tree(rhs).Sets()
			for i, a := range cands {
				for j, b := range cands {
					if i != j && a.IsSubsetOf(b) {
						t.Fatalf("rhs %d: candidates not minimal: %v ⊆ %v", rhs, a, b)
					}
				}
			}
			// Consistency: every surviving candidate escapes every
			// inverted non-FD with this RHS.
			for _, nf := range nonFDs {
				if nf.RHS != rhs {
					continue
				}
				for _, c := range cands {
					if c.IsSubsetOf(nf.LHS) {
						t.Fatalf("candidate %v→%d still invalidated by non-FD %v", c, rhs, nf)
					}
				}
			}
		}
	})
}
