package cover

import (
	"math/rand"
	"testing"

	"eulerfd/internal/fdset"
	"eulerfd/internal/pool"
)

// randomNonFDs builds a reproducible batch with plenty of subset/superset
// collisions within each RHS so supersede tracking is exercised.
func randomNonFDs(ncols, n int, seed int64) []fdset.FD {
	r := rand.New(rand.NewSource(seed))
	out := make([]fdset.FD, 0, n)
	for i := 0; i < n; i++ {
		rhs := r.Intn(ncols)
		var lhs fdset.AttrSet
		for a := 0; a < ncols; a++ {
			if a != rhs && r.Intn(3) == 0 {
				lhs.Add(a)
			}
		}
		out = append(out, fdset.FD{LHS: lhs, RHS: rhs})
	}
	return out
}

func TestAddTrackedBatchMatchesSequentialAddTracked(t *testing.T) {
	const ncols = 12
	batch := randomNonFDs(ncols, 600, 42)

	// Reference: one-by-one AddTracked in batch order.
	ref := NewNCover(ncols, nil)
	refAdded := 0
	for _, f := range batch {
		if ok, _ := ref.AddTracked(f); ok {
			refAdded++
		}
	}

	for _, workers := range []int{1, 2, 4, 8} {
		pl := pool.New(workers)
		n := NewNCover(ncols, nil)
		added, events := n.AddTrackedBatch(batch, pl)
		pl.Close()
		if added != refAdded {
			t.Errorf("workers=%d: added = %d, want %d", workers, added, refAdded)
		}
		if len(events) != added {
			t.Errorf("workers=%d: %d events for %d additions", workers, len(events), added)
		}
		if n.Size() != ref.Size() {
			t.Errorf("workers=%d: size = %d, want %d", workers, n.Size(), ref.Size())
		}
		got, want := n.FDs(), ref.FDs()
		if len(got) != len(want) {
			t.Fatalf("workers=%d: cover has %d non-FDs, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: cover diverges at %d: %v vs %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestAddTrackedBatchEventsDeterministic(t *testing.T) {
	const ncols = 10
	batch := randomNonFDs(ncols, 400, 7)
	run := func(workers int) (int, []AddEvent) {
		pl := pool.New(workers)
		defer pl.Close()
		n := NewNCover(ncols, nil)
		return n.AddTrackedBatch(batch, pl)
	}
	added1, ev1 := run(1)
	added4, ev4 := run(4)
	if added1 != added4 || len(ev1) != len(ev4) {
		t.Fatalf("event counts differ: %d/%d vs %d/%d", added1, len(ev1), added4, len(ev4))
	}
	for i := range ev1 {
		if ev1[i].NonFD != ev4[i].NonFD || len(ev1[i].Superseded) != len(ev4[i].Superseded) {
			t.Fatalf("event %d differs between worker counts", i)
		}
		for j := range ev1[i].Superseded {
			if ev1[i].Superseded[j] != ev4[i].Superseded[j] {
				t.Fatalf("event %d superseded[%d] differs", i, j)
			}
		}
	}
}

func TestAddTrackedBatchSupersededFeedsPending(t *testing.T) {
	// A generalization admitted first must appear as superseded when its
	// specialization lands in a later batch — the contract the double
	// cycle's pending-inversion queue relies on.
	n := NewNCover(4, nil)
	_, ev := n.AddTrackedBatch([]fdset.FD{{LHS: fdset.NewAttrSet(0), RHS: 3}}, nil)
	if len(ev) != 1 || len(ev[0].Superseded) != 0 {
		t.Fatalf("unexpected first admission: %+v", ev)
	}
	_, ev = n.AddTrackedBatch([]fdset.FD{{LHS: fdset.NewAttrSet(0, 1), RHS: 3}}, nil)
	if len(ev) != 1 || len(ev[0].Superseded) != 1 || ev[0].Superseded[0] != fdset.NewAttrSet(0) {
		t.Fatalf("specialization did not report superseded generalization: %+v", ev)
	}
	if n.Size() != 1 {
		t.Errorf("size = %d, want 1", n.Size())
	}
}

func TestInvertAllPoolMatchesSequential(t *testing.T) {
	const ncols = 9
	nonFDs := randomNonFDs(ncols, 300, 99)
	fdset.SortFDs(nonFDs)

	seq := NewPCover(ncols, nil)
	seqAdded := seq.InvertAll(nonFDs)
	for _, workers := range []int{2, 4} {
		pl := pool.New(workers)
		par := NewPCover(ncols, nil)
		parAdded := par.InvertAllPool(nonFDs, pl)
		pl.Close()
		if parAdded != seqAdded {
			t.Errorf("workers=%d: added = %d, want %d", workers, parAdded, seqAdded)
		}
		if !seq.FDs().Equal(par.FDs()) {
			t.Errorf("workers=%d: pool inversion cover differs from sequential", workers)
		}
	}
}
