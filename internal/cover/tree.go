// Package cover implements the negative and positive cover structures of
// EulerFD (Sections IV-D and IV-E): per-RHS extended binary set-tries that
// store LHS attribute sets and answer specialization (superset) and
// generalization (subset) queries quickly, plus the inversion operator of
// Algorithm 3.
//
// The tree follows the extended binary tree of Bleifuß et al. (AID-FD),
// which the paper adopts: internal nodes split on one attribute — LHSs
// containing the attribute live in the right subtree, the rest in the left
// — and every internal node caches the intersection and union of all
// descendant sets so that subset searches can be cut off early (when the
// intersection is not included in the probe) and superset searches likewise
// (when the probe is not included in the union).
package cover

import (
	"eulerfd/internal/fdset"
)

// Tree stores a family of attribute sets (LHSs for one fixed RHS) and
// supports subset/superset queries, removal, and enumeration. The zero
// value is not usable; call NewTree.
type Tree struct {
	root *node
	size int
	// rank orders attributes when choosing split attributes; lower rank
	// splits first. The paper sorts LHS attributes by ascending frequency
	// so that rare attributes discriminate near the root.
	rank []int
	// members mirrors the stored sets for O(1) exact-membership checks;
	// AttrSet is comparable, so it keys the map directly. The inversion
	// fast path (enumerating potential blockers of a candidate) depends
	// on this.
	members map[fdset.AttrSet]struct{}
}

type node struct {
	// Leaf fields: a leaf holds exactly one stored set.
	leaf fdset.AttrSet
	// Internal fields.
	attr        int // split attribute; -1 marks a leaf
	left, right *node
	inter       fdset.AttrSet // intersection of all descendant sets
	union       fdset.AttrSet // union of all descendant sets
}

func (n *node) isLeaf() bool { return n.attr < 0 }

func newLeaf(s fdset.AttrSet) *node {
	return &node{attr: -1, leaf: s, inter: s, union: s}
}

func (n *node) recompute() {
	switch {
	case n.left == nil:
		n.inter, n.union = n.right.inter, n.right.union
	case n.right == nil:
		n.inter, n.union = n.left.inter, n.left.union
	default:
		n.inter = n.left.inter.Intersect(n.right.inter)
		n.union = n.left.union.Union(n.right.union)
	}
}

// NewTree builds an empty tree. rank, when non-nil, maps attribute index to
// split priority (lower first); nil means natural attribute order.
func NewTree(rank []int) *Tree {
	return &Tree{rank: rank, members: make(map[fdset.AttrSet]struct{})}
}

// Size returns the number of stored sets.
func (t *Tree) Size() int { return t.size }

func (t *Tree) rankOf(a int) int {
	if t.rank != nil && a < len(t.rank) {
		return t.rank[a]
	}
	return a
}

// splitAttr picks the discriminating attribute between two distinct sets:
// the lowest-rank attribute of their symmetric difference.
func (t *Tree) splitAttr(a, b fdset.AttrSet) int {
	sym := a.Diff(b).Union(b.Diff(a))
	best, bestRank := -1, int(^uint(0)>>1)
	sym.ForEach(func(x int) bool {
		if r := t.rankOf(x); r < bestRank {
			best, bestRank = x, r
		}
		return true
	})
	return best
}

// Add inserts s, reporting whether it was not already present.
func (t *Tree) Add(s fdset.AttrSet) bool {
	if _, dup := t.members[s]; dup {
		return false
	}
	t.members[s] = struct{}{}
	t.size++
	if t.root == nil {
		t.root = newLeaf(s)
		return true
	}
	// Iterative descent. Adding a set can only shrink intersections and
	// grow unions along the path, so aggregates are updated on the way
	// down — no unwind needed.
	n := t.root
	var parent *node
	fromRight := false
	for !n.isLeaf() {
		n.inter = n.inter.Intersect(s)
		n.union = n.union.Union(s)
		parent = n
		if s.Has(n.attr) {
			n, fromRight = n.right, true
		} else {
			n, fromRight = n.left, false
		}
	}
	// Split the leaf on an attribute that discriminates it from s.
	a := t.splitAttr(n.leaf, s)
	in := &node{attr: a}
	if n.leaf.Has(a) {
		in.right, in.left = n, newLeaf(s)
	} else {
		in.left, in.right = n, newLeaf(s)
	}
	in.recompute()
	switch {
	case parent == nil:
		t.root = in
	case fromRight:
		parent.right = in
	default:
		parent.left = in
	}
	return true
}

// Contains reports whether s is stored exactly.
func (t *Tree) Contains(s fdset.AttrSet) bool {
	_, ok := t.members[s]
	return ok
}

// ContainsSuperset reports whether some stored set Z satisfies Z ⊇ s: the
// findSpecialization check of Algorithm 2.
func (t *Tree) ContainsSuperset(s fdset.AttrSet) bool {
	return containsSuperset(t.root, s)
}

func containsSuperset(n *node, s fdset.AttrSet) bool {
	if n == nil || !s.IsSubsetOf(n.union) {
		return false
	}
	if n.isLeaf() {
		return s.IsSubsetOf(n.leaf)
	}
	if s.Has(n.attr) {
		// Supersets of s must contain n.attr, so only the right subtree.
		return containsSuperset(n.right, s)
	}
	return containsSuperset(n.right, s) || containsSuperset(n.left, s)
}

// ContainsSubset reports whether some stored set Y satisfies Y ⊆ s: the
// findGeneralization check of Algorithm 3.
func (t *Tree) ContainsSubset(s fdset.AttrSet) bool {
	_, ok := findSubset(t.root, s)
	return ok
}

// FindSubset returns one stored set Y ⊆ s, if any.
func (t *Tree) FindSubset(s fdset.AttrSet) (fdset.AttrSet, bool) {
	return findSubset(t.root, s)
}

func findSubset(n *node, s fdset.AttrSet) (fdset.AttrSet, bool) {
	if n == nil || !n.inter.IsSubsetOf(s) {
		return fdset.AttrSet{}, false
	}
	// Positive shortcut: when every attribute stored below is in s, any
	// leaf is a subset — dense covers hit this constantly.
	if n.union.IsSubsetOf(s) {
		for !n.isLeaf() {
			if n.left != nil {
				n = n.left
			} else {
				n = n.right
			}
		}
		return n.leaf, true
	}
	if n.isLeaf() {
		if n.leaf.IsSubsetOf(s) {
			return n.leaf, true
		}
		return fdset.AttrSet{}, false
	}
	if !s.Has(n.attr) {
		// Subsets of s cannot contain n.attr, so only the left subtree.
		return findSubset(n.left, s)
	}
	if y, ok := findSubset(n.left, s); ok {
		return y, true
	}
	return findSubset(n.right, s)
}

// ContainsSubsetWithAttr reports whether some stored Y satisfies
// Y ⊆ s ∧ attr ∈ Y. The inversion operator uses it for candidate
// minimality checks: any stored subset of general ∪ {attr} must contain
// attr (the tree is an antichain and general itself was just removed),
// so subtrees whose union lacks attr are pruned wholesale.
func (t *Tree) ContainsSubsetWithAttr(s fdset.AttrSet, attr int) bool {
	return findSubsetWith(t.root, s, attr)
}

func findSubsetWith(n *node, s fdset.AttrSet, attr int) bool {
	if n == nil || !n.union.Has(attr) || !n.inter.IsSubsetOf(s) {
		return false
	}
	if n.isLeaf() {
		return n.leaf.Has(attr) && n.leaf.IsSubsetOf(s)
	}
	if n.attr == attr {
		// Sets containing attr live only in the right subtree.
		return findSubsetWith(n.right, s, attr)
	}
	if !s.Has(n.attr) {
		return findSubsetWith(n.left, s, attr)
	}
	return findSubsetWith(n.left, s, attr) || findSubsetWith(n.right, s, attr)
}

// RemoveSubsets deletes every stored set Y ⊆ s and returns the removed
// sets. Ncover construction uses it to discard generalizations of a newly
// added non-FD.
func (t *Tree) RemoveSubsets(s fdset.AttrSet) []fdset.AttrSet {
	var removed []fdset.AttrSet
	var walk func(n *node) *node
	walk = func(n *node) *node {
		if n == nil || !n.inter.IsSubsetOf(s) {
			return n
		}
		if n.isLeaf() {
			if n.leaf.IsSubsetOf(s) {
				removed = append(removed, n.leaf)
				return nil
			}
			return n
		}
		n.left = walk(n.left)
		if s.Has(n.attr) {
			n.right = walk(n.right)
		}
		if n.left == nil && n.right == nil {
			return nil
		}
		if n.left == nil {
			return n.right
		}
		if n.right == nil {
			return n.left
		}
		n.recompute()
		return n
	}
	t.root = walk(t.root)
	t.size -= len(removed)
	for _, s := range removed {
		delete(t.members, s)
	}
	return removed
}

// Remove deletes the exact set s, reporting whether it was present.
func (t *Tree) Remove(s fdset.AttrSet) bool {
	if _, ok := t.members[s]; !ok {
		return false
	}
	removed := false
	var walk func(n *node) *node
	walk = func(n *node) *node {
		if n == nil {
			return nil
		}
		if n.isLeaf() {
			if n.leaf == s {
				removed = true
				return nil
			}
			return n
		}
		if s.Has(n.attr) {
			n.right = walk(n.right)
		} else {
			n.left = walk(n.left)
		}
		if n.left == nil && n.right == nil {
			return nil
		}
		if n.left == nil {
			return n.right
		}
		if n.right == nil {
			return n.left
		}
		n.recompute()
		return n
	}
	t.root = walk(t.root)
	if removed {
		t.size--
		delete(t.members, s)
	}
	return removed
}

// ForEach visits every stored set; it stops early when fn returns false.
func (t *Tree) ForEach(fn func(fdset.AttrSet) bool) {
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n == nil {
			return true
		}
		if n.isLeaf() {
			return fn(n.leaf)
		}
		return walk(n.left) && walk(n.right)
	}
	walk(t.root)
}

// Sets returns all stored sets in tree order.
func (t *Tree) Sets() []fdset.AttrSet {
	out := make([]fdset.AttrSet, 0, t.size)
	t.ForEach(func(s fdset.AttrSet) bool {
		out = append(out, s)
		return true
	})
	return out
}
