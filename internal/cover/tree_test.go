package cover

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"eulerfd/internal/fdset"
)

func randSet(r *rand.Rand, universe int) fdset.AttrSet {
	var s fdset.AttrSet
	for a := 0; a < universe; a++ {
		if r.Intn(3) == 0 {
			s.Add(a)
		}
	}
	return s
}

// naiveFamily mirrors Tree with linear scans.
type naiveFamily struct{ sets []fdset.AttrSet }

func (f *naiveFamily) add(s fdset.AttrSet) bool {
	for _, x := range f.sets {
		if x == s {
			return false
		}
	}
	f.sets = append(f.sets, s)
	return true
}

func (f *naiveFamily) remove(s fdset.AttrSet) bool {
	for i, x := range f.sets {
		if x == s {
			f.sets = append(f.sets[:i], f.sets[i+1:]...)
			return true
		}
	}
	return false
}

func (f *naiveFamily) containsSuperset(s fdset.AttrSet) bool {
	for _, x := range f.sets {
		if s.IsSubsetOf(x) {
			return true
		}
	}
	return false
}

func (f *naiveFamily) containsSubset(s fdset.AttrSet) bool {
	for _, x := range f.sets {
		if x.IsSubsetOf(s) {
			return true
		}
	}
	return false
}

func (f *naiveFamily) removeSubsets(s fdset.AttrSet) []fdset.AttrSet {
	var removed []fdset.AttrSet
	keep := f.sets[:0]
	for _, x := range f.sets {
		if x.IsSubsetOf(s) {
			removed = append(removed, x)
		} else {
			keep = append(keep, x)
		}
	}
	f.sets = keep
	return removed
}

func sortSets(ss []fdset.AttrSet) {
	sort.Slice(ss, func(i, j int) bool {
		a, b := ss[i], ss[j]
		ai, bi := a.First(), b.First()
		for ai >= 0 && bi >= 0 {
			if ai != bi {
				return ai < bi
			}
			ai, bi = a.NextAfter(ai), b.NextAfter(bi)
		}
		return ai < 0 && bi >= 0
	})
}

func TestTreeRunningExample(t *testing.T) {
	// Figure 4: RHS = Name, non-FD LHSs AMB, MBG, BG (specialized), AG.
	a, b, g, m := 1, 2, 3, 4
	tree := NewTree(nil)
	tree.Add(fdset.NewAttrSet(a, m, b))
	tree.Add(fdset.NewAttrSet(m, b, g))
	if !tree.ContainsSuperset(fdset.NewAttrSet(b, g)) {
		t.Error("BG should be specialized by MBG")
	}
	tree.Add(fdset.NewAttrSet(a, g))
	if tree.Size() != 3 {
		t.Fatalf("size = %d, want 3", tree.Size())
	}
	for _, s := range []fdset.AttrSet{
		fdset.NewAttrSet(a, m, b), fdset.NewAttrSet(m, b, g), fdset.NewAttrSet(a, g),
	} {
		if !tree.Contains(s) {
			t.Errorf("missing %v", s)
		}
	}
	if tree.Contains(fdset.NewAttrSet(b, g)) {
		t.Error("BG should not be stored")
	}
}

func TestTreeDuplicates(t *testing.T) {
	tree := NewTree(nil)
	s := fdset.NewAttrSet(1, 2)
	if !tree.Add(s) || tree.Add(s) {
		t.Error("duplicate Add semantics wrong")
	}
	if tree.Size() != 1 {
		t.Errorf("size = %d", tree.Size())
	}
	if !tree.Remove(s) || tree.Remove(s) {
		t.Error("Remove semantics wrong")
	}
	if tree.Size() != 0 || tree.Contains(s) {
		t.Error("tree not empty after removal")
	}
}

func TestTreeEmptySetMembership(t *testing.T) {
	tree := NewTree(nil)
	tree.Add(fdset.EmptySet())
	if !tree.Contains(fdset.EmptySet()) {
		t.Error("empty set not stored")
	}
	if !tree.ContainsSubset(fdset.NewAttrSet(3)) {
		t.Error("empty set is a subset of everything")
	}
	if tree.ContainsSuperset(fdset.NewAttrSet(3)) {
		t.Error("empty set is not a superset of {3}")
	}
	if !tree.ContainsSuperset(fdset.EmptySet()) {
		t.Error("empty set is a superset of itself")
	}
}

func TestTreeAgainstNaiveProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for iter := 0; iter < 50; iter++ {
		universe := 4 + r.Intn(10)
		tree := NewTree(nil)
		naive := &naiveFamily{}
		for op := 0; op < 300; op++ {
			s := randSet(r, universe)
			switch r.Intn(6) {
			case 0, 1, 2: // add
				if got, want := tree.Add(s), naive.add(s); got != want {
					t.Fatalf("Add(%v) = %v, want %v", s, got, want)
				}
			case 3: // exact remove
				if got, want := tree.Remove(s), naive.remove(s); got != want {
					t.Fatalf("Remove(%v) = %v, want %v", s, got, want)
				}
			case 4: // remove subsets
				got := tree.RemoveSubsets(s)
				want := naive.removeSubsets(s)
				sortSets(got)
				sortSets(want)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("RemoveSubsets(%v) = %v, want %v", s, got, want)
				}
			case 5: // queries
				if got, want := tree.ContainsSuperset(s), naive.containsSuperset(s); got != want {
					t.Fatalf("ContainsSuperset(%v) = %v, want %v", s, got, want)
				}
				if got, want := tree.ContainsSubset(s), naive.containsSubset(s); got != want {
					t.Fatalf("ContainsSubset(%v) = %v, want %v", s, got, want)
				}
				if y, ok := tree.FindSubset(s); ok != naive.containsSubset(s) {
					t.Fatalf("FindSubset(%v) ok = %v", s, ok)
				} else if ok && !y.IsSubsetOf(s) {
					t.Fatalf("FindSubset returned non-subset %v of %v", y, s)
				}
			}
			if tree.Size() != len(naive.sets) {
				t.Fatalf("size drift: %d vs %d", tree.Size(), len(naive.sets))
			}
		}
		got, want := tree.Sets(), append([]fdset.AttrSet(nil), naive.sets...)
		sortSets(got)
		sortSets(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("final contents diverge")
		}
	}
}

func TestTreeRankChangesSplitsNotSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	universe := 8
	rank := make([]int, universe)
	for i := range rank {
		rank[i] = universe - i // reversed priority
	}
	tree := NewTree(rank)
	naive := &naiveFamily{}
	for op := 0; op < 400; op++ {
		s := randSet(r, universe)
		tree.Add(s)
		naive.add(s)
	}
	for op := 0; op < 200; op++ {
		s := randSet(r, universe)
		if tree.ContainsSuperset(s) != naive.containsSuperset(s) ||
			tree.ContainsSubset(s) != naive.containsSubset(s) {
			t.Fatalf("ranked tree query mismatch on %v", s)
		}
	}
}

func TestTreeForEachEarlyStop(t *testing.T) {
	tree := NewTree(nil)
	for i := 0; i < 10; i++ {
		tree.Add(fdset.NewAttrSet(i))
	}
	n := 0
	tree.ForEach(func(fdset.AttrSet) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("ForEach visited %d, want 3", n)
	}
}

func TestContainsSubsetWithAttrAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for iter := 0; iter < 30; iter++ {
		universe := 5 + r.Intn(8)
		tree := NewTree(nil)
		naive := &naiveFamily{}
		for i := 0; i < 150; i++ {
			s := randSet(r, universe)
			tree.Add(s)
			naive.add(s)
		}
		for q := 0; q < 200; q++ {
			s := randSet(r, universe)
			attr := r.Intn(universe)
			want := false
			for _, x := range naive.sets {
				if x.Has(attr) && x.IsSubsetOf(s) {
					want = true
					break
				}
			}
			if got := tree.ContainsSubsetWithAttr(s, attr); got != want {
				t.Fatalf("ContainsSubsetWithAttr(%v, %d) = %v, want %v", s, attr, got, want)
			}
		}
	}
}

// quickFamily is a generatable family of sets over a 12-attr universe for
// testing/quick properties.
type quickFamily []fdset.AttrSet

func (quickFamily) Generate(r *rand.Rand, _ int) reflect.Value {
	n := 1 + r.Intn(30)
	f := make(quickFamily, n)
	for i := range f {
		f[i] = randSet(r, 12)
	}
	return reflect.ValueOf(f)
}

// quickSet wraps an AttrSet so testing/quick can generate it in this
// package (AttrSet's fields are unexported).
type quickSet struct{ S fdset.AttrSet }

func (quickSet) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickSet{S: randSet(r, 12)})
}

func TestTreeQuickProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	// Superset query agrees with linear scan, on arbitrary families.
	if err := quick.Check(func(f quickFamily, qp quickSet) bool {
		probe := qp.S
		tree := NewTree(nil)
		for _, s := range f {
			tree.Add(s)
		}
		want := false
		for _, s := range tree.Sets() {
			if probe.IsSubsetOf(s) {
				want = true
				break
			}
		}
		return tree.ContainsSuperset(probe) == want
	}, cfg); err != nil {
		t.Error(err)
	}
	// Add is idempotent and size equals the number of distinct sets.
	if err := quick.Check(func(f quickFamily) bool {
		tree := NewTree(nil)
		distinct := map[fdset.AttrSet]struct{}{}
		for _, s := range f {
			tree.Add(s)
			tree.Add(s)
			distinct[s] = struct{}{}
		}
		return tree.Size() == len(distinct)
	}, cfg); err != nil {
		t.Error(err)
	}
	// RemoveSubsets leaves exactly the non-subsets.
	if err := quick.Check(func(f quickFamily, qp quickSet) bool {
		probe := qp.S
		tree := NewTree(nil)
		for _, s := range f {
			tree.Add(s)
		}
		tree.RemoveSubsets(probe)
		ok := true
		tree.ForEach(func(s fdset.AttrSet) bool {
			if s.IsSubsetOf(probe) {
				ok = false
				return false
			}
			return true
		})
		return ok && !tree.ContainsSubset(probe)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestPCoverQuickAntichain(t *testing.T) {
	// After any sequence of inversions the cover is an antichain and no
	// candidate is a subset of any inverted non-FD LHS.
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(func(f quickFamily) bool {
		const m = 12
		p := NewPCover(m, nil)
		var inverted []fdset.AttrSet
		for i, lhs := range f {
			rhs := i % m
			if lhs.Has(rhs) {
				lhs.Remove(rhs)
			}
			p.Invert(fdset.FD{LHS: lhs, RHS: rhs})
			if rhs == 0 {
				inverted = append(inverted, lhs)
			}
		}
		tree := p.Tree(0)
		sets := tree.Sets()
		for i, a := range sets {
			for j, b := range sets {
				if i != j && a.IsSubsetOf(b) {
					return false
				}
			}
			for _, bad := range inverted {
				if a.IsSubsetOf(bad) {
					return false
				}
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}
