package fastfds

import (
	"math/rand"
	"testing"

	"eulerfd/internal/dataset"
	"eulerfd/internal/fdset"
	"eulerfd/internal/naive"
)

func patient() *dataset.Relation {
	return dataset.MustNew("patient",
		[]string{"Name", "Age", "BloodPressure", "Gender", "Medicine"},
		[][]string{
			{"Kelly", "60", "High", "Female", "drugA"},
			{"Jack", "32", "Low", "Male", "drugC"},
			{"Nancy", "28", "Normal", "Female", "drugX"},
			{"Lily", "49", "Low", "Female", "drugY"},
			{"Ophelia", "32", "Normal", "Female", "drugX"},
			{"Anna", "49", "Normal", "Female", "drugX"},
			{"Esther", "32", "Low", "Female", "drugC"},
			{"Richard", "41", "Normal", "Male", "drugY"},
			{"Taylor", "25", "Low", "Gender-queer", "drugC"},
		})
}

func randomRelation(r *rand.Rand, rows, cols, domain int) *dataset.Relation {
	attrs := make([]string, cols)
	for i := range attrs {
		attrs[i] = string(rune('A' + i))
	}
	data := make([][]string, rows)
	for i := range data {
		row := make([]string, cols)
		for j := range row {
			row[j] = string(rune('a' + r.Intn(domain)))
		}
		data[i] = row
	}
	return dataset.MustNew("rand", attrs, data)
}

func TestFastFDsPatientExact(t *testing.T) {
	got, stats, err := Discover(patient())
	if err != nil {
		t.Fatal(err)
	}
	want := naive.Discover(patient())
	if !got.Equal(want) {
		t.Fatalf("got %v\nwant %v", got.Slice(), want.Slice())
	}
	if stats.DiffSets == 0 || stats.SearchNodes == 0 {
		t.Errorf("stats not populated: %+v", stats)
	}
}

func TestFastFDsMatchesOracleProperty(t *testing.T) {
	r := rand.New(rand.NewSource(107))
	for iter := 0; iter < 60; iter++ {
		rel := randomRelation(r, 2+r.Intn(30), 2+r.Intn(5), 1+r.Intn(4))
		got, _, err := Discover(rel)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.Discover(rel)
		if !got.Equal(want) {
			t.Fatalf("iter %d rows=%v:\ngot %v\nwant %v", iter, rel.Rows, got.Slice(), want.Slice())
		}
	}
}

func TestFastFDsAgreesWithDeeperRelations(t *testing.T) {
	// Wider relations exercise the DFS ordering and exclusion logic.
	r := rand.New(rand.NewSource(109))
	for iter := 0; iter < 15; iter++ {
		rel := randomRelation(r, 10+r.Intn(30), 6+r.Intn(3), 2+r.Intn(3))
		got, _, err := Discover(rel)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.Discover(rel)
		if !got.Equal(want) {
			t.Fatalf("iter %d:\ngot %v\nwant %v", iter, got.Slice(), want.Slice())
		}
	}
}

func TestFastFDsDegenerates(t *testing.T) {
	for _, rel := range []*dataset.Relation{
		dataset.MustNew("none", nil, nil),
		dataset.MustNew("empty", []string{"A", "B"}, nil),
		dataset.MustNew("const", []string{"A", "B"}, [][]string{{"x", "y"}, {"x", "y"}}),
		dataset.MustNew("alldiff", []string{"A", "B"}, [][]string{{"1", "2"}, {"3", "4"}}),
	} {
		got, _, err := Discover(rel)
		if err != nil {
			t.Fatalf("%s: %v", rel.Name, err)
		}
		if rel.NumCols() == 0 {
			if got.Len() != 0 {
				t.Errorf("%s: %v", rel.Name, got.Slice())
			}
			continue
		}
		if !got.Equal(naive.Discover(rel)) {
			t.Errorf("%s mismatch", rel.Name)
		}
	}
}

func TestFastFDsRejectsMalformed(t *testing.T) {
	bad := &dataset.Relation{Attrs: []string{"A"}, Rows: [][]string{{"1", "2"}}}
	if _, _, err := Discover(bad); err == nil {
		t.Error("malformed relation accepted")
	}
}

func TestDifferenceSetsMinimality(t *testing.T) {
	// Agree sets {0,1} and {0} for rhs 2 over m=3: complements within
	// {0,1} are {} wait — complements of {0,1} is {}, meaning a violating
	// pair agrees on everything except rhs: no LHS can avoid it. Use
	// rhs=3, m=4: complement({0,1}) = {2}, complement({0}) = {1,2}; the
	// minimal difference set {2} subsumes {1,2}.
	agrees := []fdset.AttrSet{fdset.NewAttrSet(0, 1), fdset.NewAttrSet(0)}
	got := differenceSets(agrees, 4, 3)
	if len(got) != 1 || got[0] != fdset.NewAttrSet(2) {
		t.Errorf("difference sets = %v", got)
	}
}
