// Package fastfds implements the FastFDs baseline (Wyss, Giannella &
// Robertson, DaWaK 2001): exact FD discovery by depth-first search over
// difference sets.
//
// For every RHS attribute A, the difference sets are the complements of
// the agree sets that lack A: a valid LHS must *cover* them all (hit each
// with at least one attribute). FastFDs searches for minimal covers
// depth-first, ordering attributes greedily by how many remaining
// difference sets they cover — the heuristic that gives the algorithm its
// name. Section II-A of the EulerFD paper places it with Dep-Miner in the
// difference- and agree-set family.
package fastfds

import (
	"context"
	"sort"
	"time"

	"eulerfd/internal/dataset"
	"eulerfd/internal/fdset"
	"eulerfd/internal/preprocess"
)

// Stats reports the work a discovery run performed.
type Stats struct {
	Rows, Cols    int
	PairsCompared int
	AgreeSets     int
	DiffSets      int // difference sets across all RHS
	SearchNodes   int // DFS nodes visited
	PcoverSize    int
	Total         time.Duration
}

// Discover returns the exact set of minimal, non-trivial FDs.
func Discover(rel *dataset.Relation) (*fdset.Set, Stats, error) {
	return DiscoverContext(context.Background(), rel)
}

// DiscoverContext is Discover under a context. Cancellation is
// cooperative, checked per row block during agree-set collection and
// between per-RHS cover searches.
func DiscoverContext(ctx context.Context, rel *dataset.Relation) (*fdset.Set, Stats, error) {
	if err := rel.Validate(); err != nil {
		return nil, Stats{}, err
	}
	return DiscoverEncodedContext(ctx, preprocess.Encode(rel))
}

// DiscoverEncoded is Discover over a pre-encoded relation.
func DiscoverEncoded(enc *preprocess.Encoded) (*fdset.Set, Stats) {
	fds, stats, _ := DiscoverEncodedContext(context.Background(), enc)
	return fds, stats
}

// DiscoverEncodedContext is DiscoverContext over a pre-encoded relation.
func DiscoverEncodedContext(ctx context.Context, enc *preprocess.Encoded) (*fdset.Set, Stats, error) {
	start := time.Now()
	m := len(enc.Attrs)
	stats := Stats{Rows: enc.NumRows, Cols: m}
	out := fdset.NewSet()
	if m == 0 {
		stats.Total = time.Since(start)
		return out, stats, nil
	}

	// Distinct agree sets once; per-RHS difference sets derive from them.
	seen := make(map[fdset.AttrSet]struct{})
	var agrees []fdset.AttrSet
	for i := 0; i < enc.NumRows; i++ {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		for j := i + 1; j < enc.NumRows; j++ {
			stats.PairsCompared++
			a := enc.AgreeSet(i, j)
			if _, dup := seen[a]; !dup {
				seen[a] = struct{}{}
				agrees = append(agrees, a)
			}
		}
	}
	stats.AgreeSets = len(agrees)

	for rhs := 0; rhs < m; rhs++ {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		diffs := differenceSets(agrees, m, rhs)
		stats.DiffSets += len(diffs)
		if len(diffs) == 0 {
			// No violating pair: ∅ → rhs.
			out.Add(fdset.FD{LHS: fdset.EmptySet(), RHS: rhs})
			continue
		}
		s := &search{diffs: diffs, rhs: rhs, out: out, stats: &stats}
		s.dfs(fdset.EmptySet(), diffs)
	}

	stats.PcoverSize = out.Len()
	stats.Total = time.Since(start)
	return out, stats, nil
}

// differenceSets returns the minimal difference sets for one RHS: the
// complements (within R \ {rhs}) of agree sets lacking rhs, reduced to
// ⊆-minimal elements — covering a minimal difference set covers every
// superset of it.
func differenceSets(agrees []fdset.AttrSet, m, rhs int) []fdset.AttrSet {
	full := fdset.FullSet(m).Without(rhs)
	var all []fdset.AttrSet
	for _, a := range agrees {
		if !a.Has(rhs) {
			all = append(all, full.Diff(a))
		}
	}
	var out []fdset.AttrSet
	for i, d := range all {
		minimal := true
		for j, e := range all {
			if i != j && e.IsSubsetOf(d) && e != d {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, d)
		}
	}
	// Dedup (several agree sets can share a complement).
	seen := make(map[fdset.AttrSet]struct{}, len(out))
	uniq := out[:0]
	for _, d := range out {
		if _, dup := seen[d]; !dup {
			seen[d] = struct{}{}
			uniq = append(uniq, d)
		}
	}
	return uniq
}

type search struct {
	diffs []fdset.AttrSet
	rhs   int
	out   *fdset.Set
	stats *Stats
}

// dfs extends the partial cover x. remaining holds the difference sets x
// does not yet cover, already stripped of attributes excluded on the path
// here, so candidate attributes always come from remaining sets.
func (s *search) dfs(x fdset.AttrSet, remaining []fdset.AttrSet) {
	s.stats.SearchNodes++
	if len(remaining) == 0 {
		// x covers everything; it is minimal iff removing any single
		// attribute uncovers some difference set.
		if s.isMinimalCover(x) {
			s.out.Add(fdset.FD{LHS: x, RHS: s.rhs})
		}
		return
	}
	// Order candidate attributes by how many remaining difference sets
	// they cover, descending (FastFDs' greedy ordering); ties break on
	// attribute index for determinism.
	counts := map[int]int{}
	for _, d := range remaining {
		d.ForEach(func(a int) bool {
			counts[a]++
			return true
		})
	}
	attrs := make([]int, 0, len(counts))
	for a := range counts {
		attrs = append(attrs, a)
	}
	sort.Slice(attrs, func(i, j int) bool {
		if counts[attrs[i]] != counts[attrs[j]] {
			return counts[attrs[i]] > counts[attrs[j]]
		}
		return attrs[i] < attrs[j]
	})
	// Recurse in order; each branch forbids the attributes tried before
	// it at this node (the classic FastFDs enumeration that visits every
	// cover once). Forbidding is folded into the remaining sets: a set
	// emptied by exclusions kills the branch.
	excluded := fdset.EmptySet()
	for _, a := range attrs {
		next := x.With(a)
		dead := false
		var rem []fdset.AttrSet
		for _, d := range remaining {
			if d.Has(a) {
				continue // now covered
			}
			nd := d.Diff(excluded)
			if nd.IsEmpty() {
				dead = true
				break
			}
			rem = append(rem, nd)
		}
		if !dead {
			s.dfs(next, rem)
		}
		excluded.Add(a)
	}
}

// isMinimalCover reports whether every attribute of x is necessary:
// dropping it leaves some difference set uncovered.
func (s *search) isMinimalCover(x fdset.AttrSet) bool {
	for _, a := range x.Attrs() {
		reduced := x.Without(a)
		covers := true
		for _, d := range s.diffs {
			if !reduced.Intersects(d) {
				covers = false
				break
			}
		}
		if covers {
			return false
		}
	}
	return true
}
