package fdset

import (
	"fmt"
	"sort"
	"strings"
)

// FD is a functional dependency LHS → RHS where RHS is a single attribute
// index. FD is comparable and can key maps.
type FD struct {
	LHS AttrSet
	RHS int
}

// NewFD builds an FD from LHS attribute indices and an RHS attribute.
func NewFD(lhs []int, rhs int) FD {
	return FD{LHS: NewAttrSet(lhs...), RHS: rhs}
}

// IsTrivial reports whether the RHS appears in the LHS (Definition 4).
func (f FD) IsTrivial() bool { return f.LHS.Has(f.RHS) }

// Generalizes reports whether f generalizes g: same RHS and f.LHS ⊆ g.LHS
// (Definition 3; a set generalizes itself here).
func (f FD) Generalizes(g FD) bool { return f.RHS == g.RHS && f.LHS.IsSubsetOf(g.LHS) }

// Specializes reports whether f specializes g: same RHS and f.LHS ⊇ g.LHS.
func (f FD) Specializes(g FD) bool { return g.Generalizes(f) }

// String renders the FD with attribute indices, e.g. "{0,2} -> 4".
func (f FD) String() string { return fmt.Sprintf("%s -> %d", f.LHS, f.RHS) }

// Format renders the FD using attribute names, e.g. "[Gender Medicine] -> BloodPressure".
func (f FD) Format(names []string) string {
	rhs := fmt.Sprintf("#%d", f.RHS)
	if f.RHS >= 0 && f.RHS < len(names) {
		rhs = names[f.RHS]
	}
	return f.LHS.Names(names) + " -> " + rhs
}

// Set is a collection of FDs with set semantics. The zero value is empty
// and ready to use via Add.
type Set struct {
	m map[FD]struct{}
}

// NewSet returns a Set pre-populated with the given FDs.
func NewSet(fds ...FD) *Set {
	s := &Set{m: make(map[FD]struct{}, len(fds))}
	for _, f := range fds {
		s.m[f] = struct{}{}
	}
	return s
}

func (s *Set) init() {
	if s.m == nil {
		s.m = make(map[FD]struct{})
	}
}

// Add inserts f. It reports whether f was not already present.
func (s *Set) Add(f FD) bool {
	s.init()
	if _, ok := s.m[f]; ok {
		return false
	}
	s.m[f] = struct{}{}
	return true
}

// Remove deletes f. It reports whether f was present.
func (s *Set) Remove(f FD) bool {
	if s == nil || s.m == nil {
		return false
	}
	if _, ok := s.m[f]; !ok {
		return false
	}
	delete(s.m, f)
	return true
}

// Contains reports whether f is in the set.
func (s *Set) Contains(f FD) bool {
	if s == nil || s.m == nil {
		return false
	}
	_, ok := s.m[f]
	return ok
}

// Len returns the number of FDs in the set.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.m)
}

// Slice returns the FDs in a deterministic order: ascending RHS, then by
// LHS cardinality, then by the ascending attribute list of the LHS.
func (s *Set) Slice() []FD {
	if s == nil {
		return nil
	}
	out := make([]FD, 0, len(s.m))
	for f := range s.m {
		out = append(out, f)
	}
	SortFDs(out)
	return out
}

// ForEach calls fn for every FD in the deterministic order of Slice
// (ascending RHS, then LHS cardinality, then attribute list). Iterating
// the underlying map directly would leak Go's randomized map order into
// callers' output (determinism invariant I1); the sort is cheap at the
// scale of result sets.
func (s *Set) ForEach(fn func(FD)) {
	for _, f := range s.Slice() {
		fn(f)
	}
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{m: make(map[FD]struct{}, s.Len())}
	if s != nil {
		for f := range s.m {
			c.m[f] = struct{}{}
		}
	}
	return c
}

// Equal reports whether s and t contain exactly the same FDs.
func (s *Set) Equal(t *Set) bool {
	if s.Len() != t.Len() {
		return false
	}
	if s == nil || t == nil {
		return s.Len() == t.Len()
	}
	for f := range s.m {
		if !t.Contains(f) {
			return false
		}
	}
	return true
}

// Minimize removes from the set every FD that is specialized by another FD
// with the same RHS (i.e. keeps only minimal FDs), and every trivial FD.
// It returns the receiver for chaining.
func (s *Set) Minimize() *Set {
	if s == nil || s.m == nil {
		return s
	}
	byRHS := make(map[int][]FD)
	for f := range s.m {
		if f.IsTrivial() {
			delete(s.m, f)
			continue
		}
		byRHS[f.RHS] = append(byRHS[f.RHS], f)
	}
	// The final set is order-independent, but iterating byRHS in sorted key
	// order keeps the whole method a deterministic computation (and keeps
	// the maporder analyzer vacuously true here).
	rhss := make([]int, 0, len(byRHS))
	for rhs := range byRHS {
		rhss = append(rhss, rhs)
	}
	sort.Ints(rhss)
	for _, rhs := range rhss {
		fds := byRHS[rhs]
		// Sort by Less (LHS size ascending, then attribute order) so that
		// any generalization of f precedes f and the scan order does not
		// inherit map iteration order; a linear scan per FD is fine for
		// test-scale sets.
		SortFDs(fds)
		for i, f := range fds {
			for j := 0; j < i; j++ {
				g := fds[j]
				if !s.Contains(g) {
					continue
				}
				if g.LHS.IsProperSubsetOf(f.LHS) {
					delete(s.m, f)
					break
				}
			}
		}
	}
	return s
}

// Less orders FDs deterministically: ascending RHS, then LHS cardinality,
// then lexicographic attribute order of the LHS.
func Less(a, b FD) bool {
	if a.RHS != b.RHS {
		return a.RHS < b.RHS
	}
	ca, cb := a.LHS.Count(), b.LHS.Count()
	if ca != cb {
		return ca < cb
	}
	if a.LHS != b.LHS {
		return lessWordwise(a.LHS, b.LHS)
	}
	return false
}

// SortFDs orders fds by Less.
func SortFDs(fds []FD) {
	sort.Slice(fds, func(i, j int) bool { return Less(fds[i], fds[j]) })
}

// lessWordwise compares attribute sets by their ascending element lists.
func lessWordwise(a, b AttrSet) bool {
	ai, bi := a.First(), b.First()
	for ai >= 0 && bi >= 0 {
		if ai != bi {
			return ai < bi
		}
		ai, bi = a.NextAfter(ai), b.NextAfter(bi)
	}
	return ai < 0 && bi >= 0
}

// FormatSet renders every FD in the set with attribute names, one per line.
func FormatSet(s *Set, names []string) string {
	var b strings.Builder
	for _, f := range s.Slice() {
		b.WriteString(f.Format(names))
		b.WriteByte('\n')
	}
	return b.String()
}
