package fdset

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestScoredFDJSONRoundTrip(t *testing.T) {
	in := []ScoredFD{
		{FD: NewFD([]int{0, 2}, 4), Score: 0.25},
		{FD: NewFD(nil, 1), Score: 0},
	}
	for _, s := range in {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal %v: %v", s, err)
		}
		var out ScoredFD
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if out != s {
			t.Errorf("round trip %v -> %s -> %v", s, b, out)
		}
	}
}

func TestScoredFDWireShape(t *testing.T) {
	b, err := json.Marshal(ScoredFD{FD: NewFD([]int{2, 0}, 4), Score: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"lhs":[0,2],"rhs":4,"score":0.5}`
	if string(b) != want {
		t.Errorf("wire = %s, want %s", b, want)
	}
	// Empty LHS must encode as [], not null, matching plain FD JSON.
	b, err = json.Marshal(ScoredFD{FD: NewFD(nil, 0), Score: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"lhs":[],"rhs":0,"score":1}`; string(b) != want {
		t.Errorf("empty-LHS wire = %s, want %s", b, want)
	}
}

func TestScoredFDUnmarshalValidates(t *testing.T) {
	var s ScoredFD
	if err := json.Unmarshal([]byte(`{"lhs":[-1],"rhs":0,"score":0}`), &s); err == nil {
		t.Error("negative LHS index should fail")
	}
	if err := json.Unmarshal([]byte(`{"lhs":[0],"rhs":999,"score":0}`), &s); err == nil {
		t.Error("out-of-range RHS should fail")
	}
}

func TestSortScoredFDs(t *testing.T) {
	fds := []ScoredFD{
		{FD: NewFD([]int{1, 2}, 3), Score: 0.1},
		{FD: NewFD([]int{0}, 3), Score: 0.9},
		{FD: NewFD([]int{5}, 1), Score: 0.5},
	}
	SortScoredFDs(fds)
	wantOrder := []FD{NewFD([]int{5}, 1), NewFD([]int{0}, 3), NewFD([]int{1, 2}, 3)}
	for i, w := range wantOrder {
		if fds[i].FD != w {
			t.Fatalf("canonical order[%d] = %v, want %v", i, fds[i].FD, w)
		}
	}
}

func TestSortScoredFDsByScore(t *testing.T) {
	fds := []ScoredFD{
		{FD: NewFD([]int{1, 2}, 3), Score: 0.5},
		{FD: NewFD([]int{0}, 3), Score: 0.5},
		{FD: NewFD([]int{4}, 0), Score: 0.1},
	}
	SortScoredFDsByScore(fds)
	want := []ScoredFD{
		{FD: NewFD([]int{4}, 0), Score: 0.1},
		{FD: NewFD([]int{0}, 3), Score: 0.5}, // canonical tie-break
		{FD: NewFD([]int{1, 2}, 3), Score: 0.5},
	}
	if !reflect.DeepEqual(fds, want) {
		t.Errorf("by-score order = %v, want %v", fds, want)
	}
}
