package fdset

import (
	"encoding/json"
	"testing"
)

func TestFDJSONRoundTrip(t *testing.T) {
	in := NewFD([]int{3, 1}, 5)
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"lhs":[1,3],"rhs":5}` {
		t.Errorf("wire shape = %s", b)
	}
	var out FD
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: %v != %v", out, in)
	}
	// Empty LHS serializes as [] and survives.
	b, err = json.Marshal(FD{LHS: EmptySet(), RHS: 0})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"lhs":[],"rhs":0}` {
		t.Errorf("empty-LHS wire shape = %s", b)
	}
}

func TestFDJSONRejectsOutOfRange(t *testing.T) {
	var f FD
	if err := json.Unmarshal([]byte(`{"lhs":[-1],"rhs":0}`), &f); err == nil {
		t.Error("negative LHS index accepted")
	}
	if err := json.Unmarshal([]byte(`{"lhs":[0],"rhs":99999}`), &f); err == nil {
		t.Error("huge RHS index accepted")
	}
}

func TestSetJSONRoundTrip(t *testing.T) {
	in := NewSet(
		NewFD([]int{0, 2}, 1),
		NewFD([]int{1}, 3),
		NewFD(nil, 4),
	)
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Set
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Equal(in) {
		t.Errorf("round trip: %v != %v", out.Slice(), in.Slice())
	}
	// Determinism: marshaling twice yields identical bytes.
	b2, _ := json.Marshal(in)
	if string(b) != string(b2) {
		t.Errorf("non-deterministic encoding: %s vs %s", b, b2)
	}
	// An empty set encodes as [] (encoding/json renders a nil *Set as
	// null on its own, before method dispatch).
	if b, _ := json.Marshal(NewSet()); string(b) != "[]" {
		t.Errorf("empty set = %s", b)
	}
}
