package fdset

import (
	"encoding/json"
	"fmt"
)

// fdWire is the JSON shape of one FD: attribute indices, not names
// (resolve names against a schema at a higher layer, e.g. eulerfd.Docs).
type fdWire struct {
	LHS []int `json:"lhs"`
	RHS int   `json:"rhs"`
}

// MarshalJSON encodes the FD as {"lhs":[indices...],"rhs":index} with the
// LHS in ascending order (Attrs order), so equal FDs always serialize to
// equal bytes.
func (f FD) MarshalJSON() ([]byte, error) {
	w := fdWire{LHS: f.LHS.Attrs(), RHS: f.RHS}
	if w.LHS == nil {
		w.LHS = []int{}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire shape written by MarshalJSON.
func (f *FD) UnmarshalJSON(data []byte) error {
	var w fdWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	for _, a := range w.LHS {
		if a < 0 || a >= MaxAttrs {
			return fmt.Errorf("fdset: LHS attribute index %d out of range [0,%d)", a, MaxAttrs)
		}
	}
	if w.RHS < 0 || w.RHS >= MaxAttrs {
		return fmt.Errorf("fdset: RHS attribute index %d out of range [0,%d)", w.RHS, MaxAttrs)
	}
	*f = NewFD(w.LHS, w.RHS)
	return nil
}

// MarshalJSON encodes the set as an array of FDs in Slice order (sorted,
// deterministic). An empty set encodes as []; note encoding/json renders
// a nil *Set struct field as null without consulting this method.
func (s *Set) MarshalJSON() ([]byte, error) {
	if s == nil || s.Len() == 0 {
		return []byte("[]"), nil
	}
	return json.Marshal(s.Slice())
}

// UnmarshalJSON decodes an array of FDs into the set, replacing its
// contents.
func (s *Set) UnmarshalJSON(data []byte) error {
	var fds []FD
	if err := json.Unmarshal(data, &fds); err != nil {
		return err
	}
	*s = *NewSet(fds...)
	return nil
}
