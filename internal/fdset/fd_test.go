package fdset

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestFDBasics(t *testing.T) {
	f := NewFD([]int{0, 2}, 3)
	if f.IsTrivial() {
		t.Error("non-trivial FD reported trivial")
	}
	g := NewFD([]int{0, 2, 3}, 3)
	if !g.IsTrivial() {
		t.Error("trivial FD not detected")
	}
	if f.String() != "{0,2} -> 3" {
		t.Errorf("String = %q", f.String())
	}
	names := []string{"N", "A", "B", "G"}
	if got := f.Format(names); got != "[N B] -> G" {
		t.Errorf("Format = %q", got)
	}
	if got := NewFD(nil, 9).Format(names); got != "[] -> #9" {
		t.Errorf("Format out-of-range RHS = %q", got)
	}
}

func TestGeneralizesSpecializes(t *testing.T) {
	base := NewFD([]int{1}, 5)
	spec := NewFD([]int{1, 2}, 5)
	other := NewFD([]int{1}, 6)
	if !base.Generalizes(spec) || !spec.Specializes(base) {
		t.Error("subset relation not detected")
	}
	if base.Generalizes(other) {
		t.Error("different RHS must not generalize")
	}
	if !base.Generalizes(base) {
		t.Error("an FD generalizes itself")
	}
	// Incomparable LHSs (Example 2).
	a := NewFD([]int{0, 1, 3}, 4)
	b := NewFD([]int{0, 3, 2}, 4)
	if a.Generalizes(b) || b.Generalizes(a) {
		t.Error("incomparable LHSs must not generalize")
	}
}

func TestSetAddRemoveContains(t *testing.T) {
	var s Set
	f := NewFD([]int{0}, 1)
	if s.Contains(f) || s.Len() != 0 {
		t.Error("zero Set should be empty")
	}
	if !s.Add(f) {
		t.Error("first Add should report true")
	}
	if s.Add(f) {
		t.Error("duplicate Add should report false")
	}
	if !s.Contains(f) || s.Len() != 1 {
		t.Error("Contains/Len after Add wrong")
	}
	if !s.Remove(f) || s.Remove(f) {
		t.Error("Remove semantics wrong")
	}
}

func TestSetNilSafety(t *testing.T) {
	var s *Set
	if s.Len() != 0 || s.Contains(NewFD([]int{0}, 1)) || s.Remove(NewFD([]int{0}, 1)) {
		t.Error("nil *Set reads should be safe no-ops")
	}
	if got := s.Slice(); got != nil {
		t.Errorf("nil Slice = %v", got)
	}
	s.ForEach(func(FD) { t.Error("nil ForEach must not call fn") })
}

func TestSetSliceDeterministic(t *testing.T) {
	s := NewSet(
		NewFD([]int{2, 3}, 1),
		NewFD([]int{0}, 1),
		NewFD([]int{1}, 0),
		NewFD([]int{0, 2}, 1),
	)
	got := s.Slice()
	want := []FD{
		NewFD([]int{1}, 0),
		NewFD([]int{0}, 1),
		NewFD([]int{0, 2}, 1),
		NewFD([]int{2, 3}, 1),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Slice order = %v, want %v", got, want)
	}
	// Same contents added in another order must slice identically.
	s2 := NewSet(want[3], want[2], want[1], want[0])
	if !reflect.DeepEqual(s2.Slice(), want) {
		t.Error("Slice order depends on insertion order")
	}
}

func TestSetEqualClone(t *testing.T) {
	a := NewSet(NewFD([]int{0}, 1), NewFD([]int{2}, 3))
	b := a.Clone()
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("clone not equal")
	}
	b.Add(NewFD([]int{4}, 5))
	if a.Equal(b) {
		t.Error("Equal ignored extra FD")
	}
	if a.Contains(NewFD([]int{4}, 5)) {
		t.Error("Clone aliases original")
	}
}

func TestMinimize(t *testing.T) {
	s := NewSet(
		NewFD([]int{0}, 2),       // minimal
		NewFD([]int{0, 1}, 2),    // specializes {0}->2, must go
		NewFD([]int{1}, 2),       // minimal
		NewFD([]int{1, 3}, 6),    // minimal
		NewFD([]int{1, 3, 4}, 6), // specializes, must go
		NewFD([]int{2, 3}, 3),    // trivial (3 in LHS), must go
		NewFD([]int{5}, 4),       // minimal
	)
	s.Minimize()
	want := NewSet(
		NewFD([]int{0}, 2),
		NewFD([]int{1}, 2),
		NewFD([]int{1, 3}, 6),
		NewFD([]int{5}, 4),
	)
	if !s.Equal(want) {
		t.Errorf("Minimize result:\n%v\nwant:\n%v", s.Slice(), want.Slice())
	}
}

func TestMinimizeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 100; iter++ {
		s := NewSet()
		var fds []FD
		for i := 0; i < 30; i++ {
			f := FD{LHS: randSet(r, 8), RHS: r.Intn(8)}
			fds = append(fds, f)
			s.Add(f)
		}
		s.Minimize()
		// Every surviving FD is non-trivial and not specialized by another
		// original FD that also survives... stronger: for each survivor f,
		// no *original* non-trivial g with g.LHS ⊂ f.LHS, same RHS.
		s.ForEach(func(f FD) {
			if f.IsTrivial() {
				t.Fatalf("trivial FD survived: %v", f)
			}
			for _, g := range fds {
				if g.IsTrivial() || g == f {
					continue
				}
				if g.RHS == f.RHS && g.LHS.IsProperSubsetOf(f.LHS) {
					t.Fatalf("non-minimal FD survived: %v generalized by %v", f, g)
				}
			}
		})
		// Every original minimal non-trivial FD survives.
		for _, f := range fds {
			if f.IsTrivial() {
				continue
			}
			minimal := true
			for _, g := range fds {
				if g.IsTrivial() || g == f {
					continue
				}
				if g.RHS == f.RHS && g.LHS.IsProperSubsetOf(f.LHS) {
					minimal = false
					break
				}
			}
			if minimal && !s.Contains(f) {
				t.Fatalf("minimal FD dropped: %v", f)
			}
		}
	}
}

func TestFormatSet(t *testing.T) {
	s := NewSet(NewFD([]int{0}, 1), NewFD([]int{1}, 0))
	out := FormatSet(s, []string{"A", "B"})
	if !strings.Contains(out, "[B] -> A") || !strings.Contains(out, "[A] -> B") {
		t.Errorf("FormatSet output = %q", out)
	}
}

func TestSortFDsTieBreak(t *testing.T) {
	fds := []FD{
		NewFD([]int{1, 2}, 0),
		NewFD([]int{0, 3}, 0),
		NewFD([]int{0, 2}, 0),
	}
	SortFDs(fds)
	want := []FD{
		NewFD([]int{0, 2}, 0),
		NewFD([]int{0, 3}, 0),
		NewFD([]int{1, 2}, 0),
	}
	if !reflect.DeepEqual(fds, want) {
		t.Errorf("SortFDs = %v, want %v", fds, want)
	}
}
