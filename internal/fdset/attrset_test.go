package fdset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randSet draws a random attribute set over a small universe so that subset
// relations actually occur in property tests.
func randSet(r *rand.Rand, universe int) AttrSet {
	var s AttrSet
	for a := 0; a < universe; a++ {
		if r.Intn(2) == 0 {
			s.Add(a)
		}
	}
	return s
}

// Generate lets testing/quick synthesize AttrSet values over a 20-attribute
// universe (dense enough for interesting overlap).
func (AttrSet) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randSet(r, 20))
}

func TestAttrSetBasics(t *testing.T) {
	var s AttrSet
	if !s.IsEmpty() || s.Count() != 0 || s.First() != -1 {
		t.Fatalf("zero value not empty: %v", s)
	}
	s.Add(3)
	s.Add(64)
	s.Add(383)
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	for _, a := range []int{3, 64, 383} {
		if !s.Has(a) {
			t.Errorf("Has(%d) = false, want true", a)
		}
	}
	if s.Has(2) || s.Has(-1) || s.Has(MaxAttrs) {
		t.Error("Has reported membership for absent/out-of-range attrs")
	}
	if got := s.Attrs(); !reflect.DeepEqual(got, []int{3, 64, 383}) {
		t.Errorf("Attrs = %v", got)
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 2 {
		t.Errorf("Remove failed: %v", s)
	}
}

func TestAttrSetOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range did not panic")
		}
	}()
	var s AttrSet
	s.Add(MaxAttrs)
}

func TestFullSet(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 383, 384} {
		s := FullSet(n)
		if s.Count() != n {
			t.Errorf("FullSet(%d).Count = %d", n, s.Count())
		}
		if n > 0 && (!s.Has(0) || !s.Has(n-1) || s.Has(n)) {
			t.Errorf("FullSet(%d) membership wrong", n)
		}
	}
}

func TestNextAfter(t *testing.T) {
	s := NewAttrSet(0, 5, 63, 64, 200)
	want := []int{0, 5, 63, 64, 200}
	got := []int{}
	for a := s.First(); a >= 0; a = s.NextAfter(a) {
		got = append(got, a)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("iteration = %v, want %v", got, want)
	}
	if s.NextAfter(200) != -1 || s.NextAfter(MaxAttrs) != -1 {
		t.Error("NextAfter past end should be -1")
	}
	if s.NextAfter(-5) != 0 {
		t.Error("NextAfter(-5) should return first element")
	}
}

func TestSetAlgebraAgainstMaps(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	toMap := func(s AttrSet) map[int]bool {
		m := map[int]bool{}
		for _, a := range s.Attrs() {
			m[a] = true
		}
		return m
	}
	for i := 0; i < 200; i++ {
		a, b := randSet(r, 70), randSet(r, 70)
		ma, mb := toMap(a), toMap(b)
		union := map[int]bool{}
		inter := map[int]bool{}
		diff := map[int]bool{}
		for k := range ma {
			union[k] = true
			if mb[k] {
				inter[k] = true
			} else {
				diff[k] = true
			}
		}
		for k := range mb {
			union[k] = true
		}
		if got := toMap(a.Union(b)); !reflect.DeepEqual(got, union) {
			t.Fatalf("Union mismatch: %v vs %v", got, union)
		}
		if got := toMap(a.Intersect(b)); len(got) != len(inter) || !reflect.DeepEqual(got, inter) {
			t.Fatalf("Intersect mismatch")
		}
		if got := toMap(a.Diff(b)); len(got) != len(diff) || !reflect.DeepEqual(got, diff) {
			t.Fatalf("Diff mismatch")
		}
	}
}

func TestSubsetProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	// s ⊆ s∪t and s∩t ⊆ s
	if err := quick.Check(func(s, t2 AttrSet) bool {
		return s.IsSubsetOf(s.Union(t2)) && s.Intersect(t2).IsSubsetOf(s)
	}, cfg); err != nil {
		t.Error(err)
	}
	// subset ⇔ union equals superset
	if err := quick.Check(func(s, t2 AttrSet) bool {
		return s.IsSubsetOf(t2) == (s.Union(t2) == t2)
	}, cfg); err != nil {
		t.Error(err)
	}
	// diff removes exactly the intersection
	if err := quick.Check(func(s, t2 AttrSet) bool {
		d := s.Diff(t2)
		return !d.Intersects(t2) && d.Union(s.Intersect(t2)) == s
	}, cfg); err != nil {
		t.Error(err)
	}
	// Intersects consistent with Intersect
	if err := quick.Check(func(s, t2 AttrSet) bool {
		return s.Intersects(t2) == !s.Intersect(t2).IsEmpty()
	}, cfg); err != nil {
		t.Error(err)
	}
	// count is cardinality of Attrs
	if err := quick.Check(func(s AttrSet) bool {
		return s.Count() == len(s.Attrs())
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestWithWithout(t *testing.T) {
	s := NewAttrSet(1, 2)
	t2 := s.With(9)
	if s.Has(9) {
		t.Error("With mutated receiver")
	}
	if !t2.Has(9) || !t2.Has(1) {
		t.Error("With result wrong")
	}
	t3 := t2.Without(1)
	if t2.Has(1) != true || t3.Has(1) {
		t.Error("Without wrong")
	}
}

func TestStringAndNames(t *testing.T) {
	s := NewAttrSet(0, 2)
	if s.String() != "{0,2}" {
		t.Errorf("String = %q", s.String())
	}
	if got := s.Names([]string{"A", "B", "C"}); got != "[A C]" {
		t.Errorf("Names = %q", got)
	}
	if got := s.Names([]string{"A"}); got != "[A #2]" {
		t.Errorf("Names with short list = %q", got)
	}
	if EmptySet().String() != "{}" {
		t.Error("empty String wrong")
	}
}

func TestHashDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	seen := map[uint64]AttrSet{}
	for i := 0; i < 2000; i++ {
		s := randSet(r, 100)
		h := s.Hash()
		if prev, ok := seen[h]; ok && prev != s {
			t.Fatalf("hash collision between %v and %v", prev, s)
		}
		seen[h] = s
	}
}
