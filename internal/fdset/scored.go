package fdset

import (
	"encoding/json"
	"fmt"
	"sort"
)

// ScoredFD pairs a functional dependency with an error score under some
// AFD measure (internal/afd). Score is an error, not a confidence: 0
// means the FD holds exactly and larger is worse, so every measure sorts
// the same way regardless of its definition.
type ScoredFD struct {
	FD    FD
	Score float64
}

// String renders the scored FD, e.g. "{0,2} -> 4 (0.0133)".
func (s ScoredFD) String() string {
	return fmt.Sprintf("%s (%.4g)", s.FD, s.Score)
}

// scoredWire extends the fdWire shape with the score, keeping the lhs/rhs
// keys byte-identical to plain FD JSON so clients can share decoders.
type scoredWire struct {
	LHS   []int   `json:"lhs"`
	RHS   int     `json:"rhs"`
	Score float64 `json:"score"`
}

// MarshalJSON encodes the scored FD as {"lhs":[...],"rhs":i,"score":e}.
func (s ScoredFD) MarshalJSON() ([]byte, error) {
	w := scoredWire{LHS: s.FD.LHS.Attrs(), RHS: s.FD.RHS, Score: s.Score}
	if w.LHS == nil {
		w.LHS = []int{}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire shape written by MarshalJSON, with the
// same index-range validation as FD.
func (s *ScoredFD) UnmarshalJSON(data []byte) error {
	var w scoredWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	fdBytes, err := json.Marshal(fdWire{LHS: w.LHS, RHS: w.RHS})
	if err != nil {
		return err
	}
	var f FD
	if err := f.UnmarshalJSON(fdBytes); err != nil {
		return err
	}
	*s = ScoredFD{FD: f, Score: w.Score}
	return nil
}

// SortScoredFDs orders scored FDs canonically, ignoring scores: ascending
// RHS, then LHS cardinality, then attribute order (Less). Use this when
// the score is an annotation on a result set, e.g. threshold-mode AFD
// output.
func SortScoredFDs(fds []ScoredFD) {
	sort.Slice(fds, func(i, j int) bool { return Less(fds[i].FD, fds[j].FD) })
}

// SortScoredFDsByScore orders scored FDs by ascending error (best first),
// breaking score ties by the canonical FD order so equal-scored rankings
// are deterministic. Use this for top-k output.
func SortScoredFDsByScore(fds []ScoredFD) {
	sort.Slice(fds, func(i, j int) bool {
		if fds[i].Score != fds[j].Score {
			return fds[i].Score < fds[j].Score
		}
		return Less(fds[i].FD, fds[j].FD)
	})
}
