// Package fdset provides the core value types of FD discovery: attribute
// sets represented as fixed-width bitsets, functional dependencies, and
// canonical FD collections with minimality utilities.
//
// AttrSet is a comparable value type (usable directly as a map key), which
// the sampling and cover modules rely on for agree-set deduplication.
package fdset

import (
	"fmt"
	"math/bits"
	"strings"
)

// attrWords is the number of 64-bit words in an AttrSet.
const attrWords = 6

// MaxAttrs is the largest attribute index an AttrSet can hold, exclusive.
// 384 covers every dataset in the evaluation (uniprot has 223 columns and
// the DMS fleet tops out at 312).
const MaxAttrs = attrWords * 64

// AttrSet is a set of attribute indices in [0, MaxAttrs). The zero value is
// the empty set. AttrSet is comparable: two sets are equal iff they contain
// the same attributes, so it can key maps and be compared with ==.
type AttrSet struct {
	w [attrWords]uint64
}

// EmptySet returns the empty attribute set.
func EmptySet() AttrSet { return AttrSet{} }

// FromWord builds a set over attributes [0, 64) directly from a bitmask:
// bit i set means attribute i is present. It is the single-word fast-path
// constructor of the batched agree-set kernels (preprocess), which for
// relations of ≤ 64 columns accumulate an agree set as one machine word
// and materialize the AttrSet only when the word is retained. FromWord
// performs no allocation and compiles to a handful of moves.
func FromWord(w uint64) AttrSet {
	var s AttrSet
	s.w[0] = w
	return s
}

// Word0 returns the first 64-bit word of the set: the whole set whenever
// every attribute index is below 64 (the single-word fast path).
func (s AttrSet) Word0() uint64 { return s.w[0] }

// NewAttrSet builds a set from the given attribute indices.
// It panics if an index is out of range, as that is a programming error.
func NewAttrSet(attrs ...int) AttrSet {
	var s AttrSet
	for _, a := range attrs {
		s.Add(a)
	}
	return s
}

// FullSet returns the set {0, 1, ..., n-1}.
func FullSet(n int) AttrSet {
	if n < 0 || n > MaxAttrs {
		panic(fmt.Sprintf("fdset: FullSet size %d out of range", n))
	}
	var s AttrSet
	for i := 0; i < n/64; i++ {
		s.w[i] = ^uint64(0)
	}
	if r := n % 64; r != 0 {
		s.w[n/64] = (uint64(1) << r) - 1
	}
	return s
}

func checkAttr(a int) {
	if a < 0 || a >= MaxAttrs {
		panic(fmt.Sprintf("fdset: attribute index %d out of range [0,%d)", a, MaxAttrs))
	}
}

// Add inserts attribute a into the set.
func (s *AttrSet) Add(a int) {
	checkAttr(a)
	s.w[a/64] |= uint64(1) << (a % 64)
}

// Remove deletes attribute a from the set.
func (s *AttrSet) Remove(a int) {
	checkAttr(a)
	s.w[a/64] &^= uint64(1) << (a % 64)
}

// Has reports whether attribute a is in the set.
func (s AttrSet) Has(a int) bool {
	if a < 0 || a >= MaxAttrs {
		return false
	}
	return s.w[a/64]&(uint64(1)<<(a%64)) != 0
}

// IsEmpty reports whether the set has no attributes.
func (s AttrSet) IsEmpty() bool {
	for _, w := range s.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of attributes in the set.
func (s AttrSet) Count() int {
	n := 0
	for _, w := range s.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// With returns a copy of s with attribute a added.
func (s AttrSet) With(a int) AttrSet {
	s.Add(a)
	return s
}

// Without returns a copy of s with attribute a removed.
func (s AttrSet) Without(a int) AttrSet {
	s.Remove(a)
	return s
}

// Union returns s ∪ t.
func (s AttrSet) Union(t AttrSet) AttrSet {
	var r AttrSet
	for i := range s.w {
		r.w[i] = s.w[i] | t.w[i]
	}
	return r
}

// Intersect returns s ∩ t.
func (s AttrSet) Intersect(t AttrSet) AttrSet {
	var r AttrSet
	for i := range s.w {
		r.w[i] = s.w[i] & t.w[i]
	}
	return r
}

// Diff returns s \ t.
func (s AttrSet) Diff(t AttrSet) AttrSet {
	var r AttrSet
	for i := range s.w {
		r.w[i] = s.w[i] &^ t.w[i]
	}
	return r
}

// IsSubsetOf reports whether every attribute of s is in t (s ⊆ t).
func (s AttrSet) IsSubsetOf(t AttrSet) bool {
	for i := range s.w {
		if s.w[i]&^t.w[i] != 0 {
			return false
		}
	}
	return true
}

// IsSupersetOf reports whether every attribute of t is in s (s ⊇ t).
func (s AttrSet) IsSupersetOf(t AttrSet) bool { return t.IsSubsetOf(s) }

// IsProperSubsetOf reports s ⊂ t.
func (s AttrSet) IsProperSubsetOf(t AttrSet) bool { return s != t && s.IsSubsetOf(t) }

// Intersects reports whether s ∩ t is non-empty.
func (s AttrSet) Intersects(t AttrSet) bool {
	for i := range s.w {
		if s.w[i]&t.w[i] != 0 {
			return true
		}
	}
	return false
}

// First returns the smallest attribute in the set, or -1 if empty.
func (s AttrSet) First() int {
	for i, w := range s.w {
		if w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// NextAfter returns the smallest attribute strictly greater than a,
// or -1 if there is none. Pass a = -1 to obtain the first attribute.
func (s AttrSet) NextAfter(a int) int {
	start := a + 1
	if start < 0 {
		start = 0
	}
	if start >= MaxAttrs {
		return -1
	}
	wi := start / 64
	w := s.w[wi] >> (start % 64)
	if w != 0 {
		return start + bits.TrailingZeros64(w)
	}
	for i := wi + 1; i < attrWords; i++ {
		if s.w[i] != 0 {
			return i*64 + bits.TrailingZeros64(s.w[i])
		}
	}
	return -1
}

// Attrs returns the attributes in ascending order.
func (s AttrSet) Attrs() []int {
	out := make([]int, 0, s.Count())
	for a := s.First(); a >= 0; a = s.NextAfter(a) {
		out = append(out, a)
	}
	return out
}

// ForEach calls fn for every attribute in ascending order. It stops early
// if fn returns false.
func (s AttrSet) ForEach(fn func(a int) bool) {
	for a := s.First(); a >= 0; a = s.NextAfter(a) {
		if !fn(a) {
			return
		}
	}
}

// NumWords is the number of 64-bit words backing an AttrSet; word i holds
// attributes [64i, 64i+64).
const NumWords = attrWords

// Word returns the i-th 64-bit word of the set. It panics when i is out of
// range, as that is a programming error.
func (s AttrSet) Word(i int) uint64 { return s.w[i] }

// SetWord overwrites the i-th 64-bit word of the set. It exists for batch
// kernels (preprocess.AgreeSetsInto and friends) that assemble agree sets
// word-by-word from a columnar scan without per-bit Add calls.
func (s *AttrSet) SetWord(i int, w uint64) { s.w[i] = w }

// Hash returns a 64-bit mix of the set contents, suitable for sharding.
func (s AttrSet) Hash() uint64 {
	h := uint64(1469598103934665603)
	for _, w := range s.w {
		h ^= w
		h *= 1099511628211
	}
	return h
}

// String renders the set as attribute indices, e.g. "{0,3,7}".
func (s AttrSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(a int) bool {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", a)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

// Names renders the set using the provided attribute names, e.g. "[Name Age]".
func (s AttrSet) Names(names []string) string {
	var b strings.Builder
	b.WriteByte('[')
	first := true
	s.ForEach(func(a int) bool {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		if a < len(names) {
			b.WriteString(names[a])
		} else {
			fmt.Fprintf(&b, "#%d", a)
		}
		return true
	})
	b.WriteByte(']')
	return b.String()
}
