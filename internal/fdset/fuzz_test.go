package fdset

import (
	"encoding/binary"
	"testing"
)

// fuzzSet builds an AttrSet from up to 48 bytes of raw word data via the
// SetWord kernel interface, exercising the full 384-bit width.
func fuzzSet(data []byte) AttrSet {
	var s AttrSet
	for i := 0; i < NumWords; i++ {
		if len(data) < 8 {
			break
		}
		s.SetWord(i, binary.LittleEndian.Uint64(data[:8]))
		data = data[8:]
	}
	return s
}

// FuzzAttrSetOps checks the algebraic identities the covers and the
// agree-set kernels rely on, over arbitrary bit patterns.
func FuzzAttrSetOps(f *testing.F) {
	f.Add(make([]byte, 96), byte(0))
	f.Add(append(make([]byte, 95), 0xff), byte(200))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, byte(63))
	f.Fuzz(func(t *testing.T, data []byte, attrByte byte) {
		a := fuzzSet(data)
		var b AttrSet
		if len(data) >= 48 {
			b = fuzzSet(data[48:])
		}
		attr := int(attrByte) % (NumWords * 64)

		// Partition identity: a = (a∖b) ⊎ (a∩b), and the union of the
		// parts with b reassembles a∪b.
		inter := a.Intersect(b)
		diff := a.Diff(b)
		if diff.Intersects(inter) {
			t.Fatalf("a∖b and a∩b overlap: %v %v", diff, inter)
		}
		if got := diff.Union(inter); got != a {
			t.Fatalf("(a∖b)∪(a∩b) = %v, want %v", got, a)
		}
		if got := diff.Union(b); got != a.Union(b) {
			t.Fatalf("(a∖b)∪b = %v, want %v", got, a.Union(b))
		}

		// Inclusion–exclusion on counts.
		if a.Union(b).Count() != a.Count()+b.Count()-inter.Count() {
			t.Fatalf("|a∪b| = %d, want %d+%d-%d", a.Union(b).Count(), a.Count(), b.Count(), inter.Count())
		}

		// Subset laws.
		if !inter.IsSubsetOf(a) || !inter.IsSubsetOf(b) {
			t.Fatal("a∩b must be a subset of both operands")
		}
		if !a.IsSubsetOf(a.Union(b)) || !b.IsSupersetOf(inter) {
			t.Fatal("operands must sit between intersection and union")
		}
		if a.IsSubsetOf(b) != (a.Union(b) == b) {
			t.Fatalf("IsSubsetOf inconsistent with union: a=%v b=%v", a, b)
		}

		// With/Without are pure: the receiver is unchanged and the
		// round trip restores the original.
		before := a
		w := a.With(attr)
		if a != before {
			t.Fatal("With mutated its receiver")
		}
		if !w.Has(attr) || w.Without(attr).Has(attr) {
			t.Fatal("With/Without do not toggle the attribute")
		}
		if a.Has(attr) {
			if w != a {
				t.Fatal("With on a member must be a no-op")
			}
		} else if w.Without(attr) != a {
			t.Fatal("With then Without must restore the set")
		}

		// Enumeration agrees with membership and is strictly ascending.
		attrs := a.Attrs()
		if len(attrs) != a.Count() {
			t.Fatalf("len(Attrs) = %d, Count = %d", len(attrs), a.Count())
		}
		for i, x := range attrs {
			if !a.Has(x) {
				t.Fatalf("Attrs returned non-member %d", x)
			}
			if i > 0 && attrs[i-1] >= x {
				t.Fatalf("Attrs not strictly ascending: %v", attrs)
			}
		}
		if NewAttrSet(attrs...) != a {
			t.Fatal("NewAttrSet(Attrs()) does not round-trip")
		}

		// First/NextAfter walk the same sequence as Attrs.
		i, x := 0, a.First()
		for x >= 0 {
			if i >= len(attrs) || attrs[i] != x {
				t.Fatalf("First/NextAfter walk diverges from Attrs at step %d", i)
			}
			i++
			x = a.NextAfter(x)
		}
		if i != len(attrs) {
			t.Fatalf("First/NextAfter stopped after %d of %d members", i, len(attrs))
		}

		// Word/SetWord round-trip and Hash determinism.
		var rebuilt AttrSet
		for w := 0; w < NumWords; w++ {
			rebuilt.SetWord(w, a.Word(w))
		}
		if rebuilt != a {
			t.Fatal("Word/SetWord does not round-trip")
		}
		if a.Hash() != rebuilt.Hash() {
			t.Fatal("equal sets hash differently")
		}
	})
}
