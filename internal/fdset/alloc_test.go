package fdset

import (
	"testing"

	"eulerfd/internal/testutil"
)

// TestSingleWordOpsAllocFree pins the value-type contract of AttrSet:
// the single-word constructors and the set algebra the sampling and
// scoring hot paths lean on must never touch the heap. A regression here
// (e.g. an op returning a pointer or boxing into an interface) would
// silently put an allocation on every sampled pair.
func TestSingleWordOpsAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("alloc assertions are meaningless under -race")
	}
	var sink AttrSet
	var sinkInt int
	var sinkBool bool
	ops := map[string]func(){
		"FromWord":   func() { sink = FromWord(0xdeadbeef) },
		"Word0":      func() { sinkInt = int(sink.Word0()) },
		"With":       func() { sink = sink.With(7) },
		"Has":        func() { sinkBool = sink.Has(7) },
		"Count":      func() { sinkInt = sink.Count() },
		"Intersect":  func() { sink = sink.Intersect(FromWord(0xff)) },
		"IsSubsetOf": func() { sinkBool = FromWord(1).IsSubsetOf(sink) },
	}
	for name, fn := range ops {
		if allocs := testing.AllocsPerRun(10, fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs per run, want 0", name, allocs)
		}
	}
	_, _, _ = sink, sinkInt, sinkBool
}
