// Package dfd implements the Dfd baseline (Abedjan, Schulze & Naumann,
// CIKM 2014): exact FD discovery by depth-first random walks through the
// lattice of LHS candidates, one walk per RHS attribute.
//
// Each lattice node is classified as dependency or non-dependency by a
// partition check; classifications propagate (supersets of dependencies
// are dependencies, subsets of non-dependencies are non-dependencies), so
// the walk only validates at the boundary. When a walk strands, the next
// unclassified node ("hole") is found by re-deriving the minimal sets
// that escape all known maximal non-dependencies — the same inversion
// machinery the induction algorithms use — and validating any that are
// not yet known minimal dependencies. Section II-A of the EulerFD paper
// lists Dfd with TANE among the lattice-traversal family.
package dfd

import (
	"context"
	"math/rand"
	"time"

	"eulerfd/internal/cover"
	"eulerfd/internal/dataset"
	"eulerfd/internal/fdset"
	"eulerfd/internal/preprocess"
)

// Stats reports the work a discovery run performed.
type Stats struct {
	Rows, Cols  int
	Validations int // partition checks performed
	WalkSteps   int // lattice nodes visited by random walks
	Restarts    int // hole-finding restarts
	PcoverSize  int
	Total       time.Duration
}

// Discover returns the exact set of minimal, non-trivial FDs.
func Discover(rel *dataset.Relation) (*fdset.Set, Stats, error) {
	return DiscoverContext(context.Background(), rel)
}

// DiscoverContext is Discover under a context. Cancellation is
// cooperative, checked between per-RHS lattice walks.
func DiscoverContext(ctx context.Context, rel *dataset.Relation) (*fdset.Set, Stats, error) {
	if err := rel.Validate(); err != nil {
		return nil, Stats{}, err
	}
	return DiscoverEncodedContext(ctx, preprocess.Encode(rel))
}

// rhsSearch is the per-RHS walk state.
type rhsSearch struct {
	enc   *preprocess.Encoded
	rhs   int
	m     int
	rng   *rand.Rand
	stats *Stats

	minDeps    *cover.Tree // minimal dependencies found so far
	maxNonDeps *cover.Tree // maximal non-dependencies found so far
	visited    map[fdset.AttrSet]bool
	parts      *preprocess.PartitionCache
}

// DiscoverEncoded is Discover over a pre-encoded relation.
func DiscoverEncoded(enc *preprocess.Encoded) (*fdset.Set, Stats) {
	fds, stats, _ := DiscoverEncodedContext(context.Background(), enc)
	return fds, stats
}

// DiscoverEncodedContext is DiscoverContext over a pre-encoded relation.
func DiscoverEncodedContext(ctx context.Context, enc *preprocess.Encoded) (*fdset.Set, Stats, error) {
	start := time.Now()
	m := len(enc.Attrs)
	stats := Stats{Rows: enc.NumRows, Cols: m}
	out := fdset.NewSet()
	// The partition cache is shared across RHS walks: LHS candidates
	// repeat between attributes.
	parts := preprocess.NewPartitionCache(enc, 4096)
	for rhs := 0; rhs < m; rhs++ {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		s := &rhsSearch{
			enc: enc, rhs: rhs, m: m, parts: parts,
			// Deterministic per-RHS walks: reproducible runs.
			rng:        rand.New(rand.NewSource(int64(rhs)*2654435761 + 1)),
			stats:      &stats,
			minDeps:    cover.NewTree(nil),
			maxNonDeps: cover.NewTree(nil),
			visited:    map[fdset.AttrSet]bool{},
		}
		s.run()
		s.minDeps.ForEach(func(lhs fdset.AttrSet) bool {
			out.Add(fdset.FD{LHS: lhs, RHS: rhs})
			return true
		})
	}
	stats.PcoverSize = out.Len()
	stats.Total = time.Since(start)
	return out, stats, nil
}

// isDep classifies a node, validating against the data only when the
// known boundary does not decide it.
func (s *rhsSearch) isDep(x fdset.AttrSet) bool {
	if s.minDeps.ContainsSubset(x) {
		return true
	}
	if s.maxNonDeps.ContainsSuperset(x) {
		return false
	}
	s.stats.Validations++
	return s.enc.ConstantOn(s.parts.Get(x), s.rhs)
}

// run drives random walks from seed nodes until the lattice is fully
// classified for this RHS.
func (s *rhsSearch) run() {
	// Seed with the empty set: if ∅ → rhs holds, it is the unique
	// minimal dependency and the walk is over.
	if s.isDep(fdset.EmptySet()) {
		s.minDeps.Add(fdset.EmptySet())
		return
	}
	s.maxNonDeps.Add(fdset.EmptySet())

	// Initial random walks from the singleton seeds.
	for a := 0; a < s.m; a++ {
		if a != s.rhs {
			s.walk(fdset.NewAttrSet(a))
		}
	}
	// Hole-finding rounds: every escape of the known maximal non-deps is
	// either already a known minimal dependency, a new minimal dependency
	// (its proper subsets are all non-deps by construction, so validity
	// implies minimality), or a new non-dependency that seeds another
	// walk. Each round classifies every current hole, so the boundary
	// grows monotonically and the loop terminates.
	for {
		holes := s.holes()
		if len(holes) == 0 {
			return
		}
		s.stats.Restarts++
		for _, c := range holes {
			if s.isDep(c) {
				s.minDepAdd(c)
			} else {
				s.maxNonDepAdd(c)
				s.walk(c)
			}
		}
	}
}

// walk performs one random walk from node: dependencies descend toward
// minimality, non-dependencies ascend toward maximality.
func (s *rhsSearch) walk(node fdset.AttrSet) {
	for steps := 0; steps < 4*s.m+8; steps++ {
		if s.visited[node] {
			return
		}
		s.visited[node] = true
		s.stats.WalkSteps++
		if s.isDep(node) {
			// Find a sub-dependency to descend into; if every direct
			// subset is a non-dependency, node is a minimal dependency.
			attrs := node.Attrs()
			s.rng.Shuffle(len(attrs), func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })
			descended := false
			for _, a := range attrs {
				sub := node.Without(a)
				if s.isDep(sub) {
					node = sub
					descended = true
					break
				}
				s.maxNonDepAdd(sub)
			}
			if !descended {
				s.minDepAdd(node)
				return
			}
			continue
		}
		// Non-dependency: ascend through a random unexplored superset;
		// if every direct superset is a dependency, node is a maximal
		// non-dependency.
		s.maxNonDepAdd(node)
		var ups []int
		for a := 0; a < s.m; a++ {
			if a != s.rhs && !node.Has(a) {
				ups = append(ups, a)
			}
		}
		if len(ups) == 0 {
			return
		}
		node = node.With(ups[s.rng.Intn(len(ups))])
	}
}

// minDepAdd records a minimal dependency. Walks and hole classification
// only ever call it with genuinely minimal nodes (every direct subset
// checked non-dependent), so no stored superset can exist.
func (s *rhsSearch) minDepAdd(x fdset.AttrSet) {
	if s.minDeps.ContainsSubset(x) {
		return
	}
	s.minDeps.Add(x)
}

// maxNonDepAdd records a non-dependency, discarding its subsets.
func (s *rhsSearch) maxNonDepAdd(x fdset.AttrSet) {
	if s.maxNonDeps.ContainsSuperset(x) {
		return
	}
	s.maxNonDeps.RemoveSubsets(x)
	s.maxNonDeps.Add(x)
}

// holes finds unclassified nodes: the minimal sets escaping every known
// maximal non-dependency that are not already known minimal dependencies.
// If all escapes are classified dependencies, the lattice is decided —
// the escapes are then exactly the minimal dependencies.
func (s *rhsSearch) holes() []fdset.AttrSet {
	pc := cover.NewPCover(s.m, nil)
	s.maxNonDeps.ForEach(func(lhs fdset.AttrSet) bool {
		pc.Invert(fdset.FD{LHS: lhs, RHS: s.rhs})
		return true
	})
	var out []fdset.AttrSet
	pc.Tree(s.rhs).ForEach(func(c fdset.AttrSet) bool {
		if !s.minDeps.ContainsSubset(c) {
			out = append(out, c)
		}
		return true
	})
	return out
}
