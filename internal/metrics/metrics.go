// Package metrics computes the accuracy measures of the paper's
// evaluation: precision, recall, and F1 score between a discovered FD set
// and the exact ground truth (Section V-B).
package metrics

import "eulerfd/internal/fdset"

// Result holds the accuracy of a discovered FD set against ground truth.
type Result struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	Precision      float64
	Recall         float64
	F1             float64
}

// Evaluate compares the discovered set against the exact truth set,
// matching FDs exactly (same LHS and RHS), the convention of comparing
// sets of minimal non-trivial FDs.
func Evaluate(discovered, truth *fdset.Set) Result {
	var r Result
	discovered.ForEach(func(f fdset.FD) {
		if truth.Contains(f) {
			r.TruePositives++
		} else {
			r.FalsePositives++
		}
	})
	r.FalseNegatives = truth.Len() - r.TruePositives
	if tp := float64(r.TruePositives); tp > 0 {
		r.Precision = tp / float64(r.TruePositives+r.FalsePositives)
		r.Recall = tp / float64(r.TruePositives+r.FalseNegatives)
		r.F1 = 2 * r.Precision * r.Recall / (r.Precision + r.Recall)
	} else if discovered.Len() == 0 && truth.Len() == 0 {
		// Nothing to find and nothing found is a perfect score.
		r.Precision, r.Recall, r.F1 = 1, 1, 1
	}
	return r
}
