package metrics

import (
	"math"
	"testing"

	"eulerfd/internal/fdset"
)

func fd(lhs []int, rhs int) fdset.FD { return fdset.NewFD(lhs, rhs) }

func TestEvaluatePerfect(t *testing.T) {
	s := fdset.NewSet(fd([]int{0}, 1), fd([]int{2}, 3))
	r := Evaluate(s, s.Clone())
	if r.F1 != 1 || r.Precision != 1 || r.Recall != 1 {
		t.Errorf("perfect match scored %+v", r)
	}
}

func TestEvaluateBothEmpty(t *testing.T) {
	r := Evaluate(fdset.NewSet(), fdset.NewSet())
	if r.F1 != 1 {
		t.Errorf("empty vs empty should be 1, got %+v", r)
	}
}

func TestEvaluateDisjoint(t *testing.T) {
	a := fdset.NewSet(fd([]int{0}, 1))
	b := fdset.NewSet(fd([]int{1}, 0))
	r := Evaluate(a, b)
	if r.F1 != 0 || r.Precision != 0 || r.Recall != 0 {
		t.Errorf("disjoint sets scored %+v", r)
	}
	if r.FalsePositives != 1 || r.FalseNegatives != 1 {
		t.Errorf("counts wrong: %+v", r)
	}
}

func TestEvaluatePartial(t *testing.T) {
	truth := fdset.NewSet(fd([]int{0}, 1), fd([]int{0}, 2), fd([]int{0}, 3), fd([]int{0}, 4))
	disc := fdset.NewSet(fd([]int{0}, 1), fd([]int{0}, 2), fd([]int{0}, 3), fd([]int{9}, 1))
	r := Evaluate(disc, truth)
	if r.TruePositives != 3 || r.FalsePositives != 1 || r.FalseNegatives != 1 {
		t.Fatalf("counts: %+v", r)
	}
	if math.Abs(r.Precision-0.75) > 1e-12 || math.Abs(r.Recall-0.75) > 1e-12 {
		t.Errorf("P/R wrong: %+v", r)
	}
	if math.Abs(r.F1-0.75) > 1e-12 {
		t.Errorf("F1 = %v", r.F1)
	}
}

func TestEvaluateEmptyDiscovered(t *testing.T) {
	truth := fdset.NewSet(fd([]int{0}, 1))
	r := Evaluate(fdset.NewSet(), truth)
	if r.F1 != 0 || r.FalseNegatives != 1 {
		t.Errorf("missed everything scored %+v", r)
	}
}
