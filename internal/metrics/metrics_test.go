package metrics

import (
	"math"
	"testing"

	"eulerfd/internal/fdset"
)

func fd(lhs []int, rhs int) fdset.FD { return fdset.NewFD(lhs, rhs) }

func TestEvaluatePerfect(t *testing.T) {
	s := fdset.NewSet(fd([]int{0}, 1), fd([]int{2}, 3))
	r := Evaluate(s, s.Clone())
	if r.F1 != 1 || r.Precision != 1 || r.Recall != 1 {
		t.Errorf("perfect match scored %+v", r)
	}
}

func TestEvaluateBothEmpty(t *testing.T) {
	r := Evaluate(fdset.NewSet(), fdset.NewSet())
	if r.F1 != 1 {
		t.Errorf("empty vs empty should be 1, got %+v", r)
	}
}

func TestEvaluateDisjoint(t *testing.T) {
	a := fdset.NewSet(fd([]int{0}, 1))
	b := fdset.NewSet(fd([]int{1}, 0))
	r := Evaluate(a, b)
	if r.F1 != 0 || r.Precision != 0 || r.Recall != 0 {
		t.Errorf("disjoint sets scored %+v", r)
	}
	if r.FalsePositives != 1 || r.FalseNegatives != 1 {
		t.Errorf("counts wrong: %+v", r)
	}
}

func TestEvaluatePartial(t *testing.T) {
	truth := fdset.NewSet(fd([]int{0}, 1), fd([]int{0}, 2), fd([]int{0}, 3), fd([]int{0}, 4))
	disc := fdset.NewSet(fd([]int{0}, 1), fd([]int{0}, 2), fd([]int{0}, 3), fd([]int{9}, 1))
	r := Evaluate(disc, truth)
	if r.TruePositives != 3 || r.FalsePositives != 1 || r.FalseNegatives != 1 {
		t.Fatalf("counts: %+v", r)
	}
	if math.Abs(r.Precision-0.75) > 1e-12 || math.Abs(r.Recall-0.75) > 1e-12 {
		t.Errorf("P/R wrong: %+v", r)
	}
	if math.Abs(r.F1-0.75) > 1e-12 {
		t.Errorf("F1 = %v", r.F1)
	}
}

func TestEvaluateEmptyDiscovered(t *testing.T) {
	truth := fdset.NewSet(fd([]int{0}, 1))
	r := Evaluate(fdset.NewSet(), truth)
	if r.F1 != 0 || r.FalseNegatives != 1 {
		t.Errorf("missed everything scored %+v", r)
	}
}

func TestEvaluateEmptyTruth(t *testing.T) {
	// Everything discovered against an empty truth is a false positive;
	// with zero true positives every rate stays at its 0 default (the
	// undefined 0/0 recall is reported as 0, not NaN).
	disc := fdset.NewSet(fd([]int{0}, 1), fd([]int{2}, 3))
	r := Evaluate(disc, fdset.NewSet())
	if r.TruePositives != 0 || r.FalsePositives != 2 || r.FalseNegatives != 0 {
		t.Fatalf("counts: %+v", r)
	}
	if r.Precision != 0 || r.Recall != 0 || r.F1 != 0 {
		t.Errorf("rates should be 0, got %+v", r)
	}
	if math.IsNaN(r.Precision) || math.IsNaN(r.Recall) || math.IsNaN(r.F1) {
		t.Errorf("NaN leaked: %+v", r)
	}
}

func TestEvaluateDuplicateFDs(t *testing.T) {
	// Set semantics dedup repeated insertions, so a duplicated FD cannot
	// double-count as two true positives.
	disc := fdset.NewSet()
	disc.Add(fd([]int{0}, 1))
	disc.Add(fd([]int{0}, 1)) // duplicate: Add reports already-present
	truth := fdset.NewSet(fd([]int{0}, 1))
	r := Evaluate(disc, truth)
	if r.TruePositives != 1 || r.FalsePositives != 0 {
		t.Errorf("duplicate FD double-counted: %+v", r)
	}
	if r.F1 != 1 {
		t.Errorf("F1 = %v", r.F1)
	}
}

func TestEvaluateTrivialFD(t *testing.T) {
	// A trivial FD (RHS ∈ LHS) in the discovered set is matched exactly
	// like any other: minimal non-trivial truth never contains it, so it
	// scores as a false positive rather than being silently dropped.
	trivial := fd([]int{1, 2}, 1)
	if !trivial.IsTrivial() {
		t.Fatal("test FD should be trivial")
	}
	truth := fdset.NewSet(fd([]int{0}, 1))
	disc := fdset.NewSet(fd([]int{0}, 1), trivial)
	r := Evaluate(disc, truth)
	if r.TruePositives != 1 || r.FalsePositives != 1 {
		t.Errorf("trivial FD not scored as FP: %+v", r)
	}
}

func TestEvaluateNonminimalAsymmetry(t *testing.T) {
	// Discovering a nonminimal specialization (AB → C when the truth is
	// A → C) is an exact-match miss on BOTH sides: the specialization is
	// a false positive and the minimal FD a false negative — strictly
	// worse than a plain miss, which costs recall only.
	truth := fdset.NewSet(fd([]int{0}, 2), fd([]int{1}, 3))

	nonminimal := Evaluate(fdset.NewSet(fd([]int{0, 1}, 2), fd([]int{1}, 3)), truth)
	if nonminimal.TruePositives != 1 || nonminimal.FalsePositives != 1 || nonminimal.FalseNegatives != 1 {
		t.Fatalf("nonminimal counts: %+v", nonminimal)
	}
	if math.Abs(nonminimal.Precision-0.5) > 1e-12 || math.Abs(nonminimal.Recall-0.5) > 1e-12 {
		t.Errorf("nonminimal P/R: %+v", nonminimal)
	}

	missed := Evaluate(fdset.NewSet(fd([]int{1}, 3)), truth)
	if missed.TruePositives != 1 || missed.FalsePositives != 0 || missed.FalseNegatives != 1 {
		t.Fatalf("missed counts: %+v", missed)
	}
	if missed.Precision != 1 || math.Abs(missed.Recall-0.5) > 1e-12 {
		t.Errorf("missed P/R: %+v", missed)
	}

	// The asymmetry the regression gate leans on: same recall, but the
	// nonminimal answer pays in precision where the plain miss does not.
	if !(nonminimal.Precision < missed.Precision) || nonminimal.Recall != missed.Recall {
		t.Errorf("asymmetry violated: nonminimal %+v vs missed %+v", nonminimal, missed)
	}
	if !(nonminimal.F1 < missed.F1) {
		t.Errorf("F1 should rank the plain miss above the nonminimal find: %v vs %v", nonminimal.F1, missed.F1)
	}
}
