package fdep

import (
	"math/rand"
	"testing"

	"eulerfd/internal/dataset"
	"eulerfd/internal/fdset"
	"eulerfd/internal/naive"
)

func patient() *dataset.Relation {
	return dataset.MustNew("patient",
		[]string{"Name", "Age", "BloodPressure", "Gender", "Medicine"},
		[][]string{
			{"Kelly", "60", "High", "Female", "drugA"},
			{"Jack", "32", "Low", "Male", "drugC"},
			{"Nancy", "28", "Normal", "Female", "drugX"},
			{"Lily", "49", "Low", "Female", "drugY"},
			{"Ophelia", "32", "Normal", "Female", "drugX"},
			{"Anna", "49", "Normal", "Female", "drugX"},
			{"Esther", "32", "Low", "Female", "drugC"},
			{"Richard", "41", "Normal", "Male", "drugY"},
			{"Taylor", "25", "Low", "Gender-queer", "drugC"},
		})
}

func randomRelation(r *rand.Rand, rows, cols, domain int) *dataset.Relation {
	attrs := make([]string, cols)
	for i := range attrs {
		attrs[i] = string(rune('A' + i))
	}
	data := make([][]string, rows)
	for i := range data {
		row := make([]string, cols)
		for j := range row {
			row[j] = string(rune('a' + r.Intn(domain)))
		}
		data[i] = row
	}
	return dataset.MustNew("rand", attrs, data)
}

func TestFdepPatientExact(t *testing.T) {
	got, stats, err := Discover(patient())
	if err != nil {
		t.Fatal(err)
	}
	want := naive.Discover(patient())
	if !got.Equal(want) {
		t.Fatalf("got %v\nwant %v", got.Slice(), want.Slice())
	}
	if stats.PairsCompared != 36 { // C(9,2)
		t.Errorf("PairsCompared = %d, want 36", stats.PairsCompared)
	}
}

func TestFdepMatchesOracleProperty(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for iter := 0; iter < 60; iter++ {
		rel := randomRelation(r, 2+r.Intn(30), 2+r.Intn(5), 1+r.Intn(4))
		got, _, err := Discover(rel)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.Discover(rel)
		if !got.Equal(want) {
			t.Fatalf("iter %d:\ngot %v\nwant %v", iter, got.Slice(), want.Slice())
		}
	}
}

func TestFdepDegenerates(t *testing.T) {
	cases := []*dataset.Relation{
		dataset.MustNew("empty", []string{"A", "B"}, nil),
		dataset.MustNew("one", []string{"A"}, [][]string{{"x"}}),
		dataset.MustNew("none", nil, nil),
		dataset.MustNew("alldiff", []string{"A", "B"}, [][]string{{"1", "2"}, {"3", "4"}}),
	}
	for _, rel := range cases {
		got, _, err := Discover(rel)
		if err != nil {
			t.Fatal(err)
		}
		if rel.NumCols() == 0 {
			if got.Len() != 0 {
				t.Errorf("%s: %v", rel.Name, got.Slice())
			}
			continue
		}
		want := naive.Discover(rel)
		if !got.Equal(want) {
			t.Errorf("%s: got %v, want %v", rel.Name, got.Slice(), want.Slice())
		}
	}
}

func TestFdepRejectsMalformed(t *testing.T) {
	bad := &dataset.Relation{Attrs: []string{"A"}, Rows: [][]string{{"1", "2"}}}
	if _, _, err := Discover(bad); err == nil {
		t.Error("malformed relation accepted")
	}
}

func TestFdepAllDifferPairHandled(t *testing.T) {
	// Two rows that disagree on every attribute witness ∅ ↛ A for all A;
	// Fdep sees such pairs directly (unlike cluster sampling).
	rel := dataset.MustNew("d", []string{"A", "B"}, [][]string{{"1", "2"}, {"3", "4"}})
	got, _, err := Discover(rel)
	if err != nil {
		t.Fatal(err)
	}
	// Exact result: A → B and B → A (both columns are keys).
	want := fdset.NewSet(fdset.NewFD([]int{0}, 1), fdset.NewFD([]int{1}, 0))
	if !got.Equal(want) {
		t.Errorf("got %v", got.Slice())
	}
}
