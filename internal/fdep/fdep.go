// Package fdep implements the Fdep baseline (Flach & Savnik, 1999): exact
// FD discovery by dependency induction. Every tuple pair is compared to
// collect the complete negative cover, which is then inverted into the
// positive cover of minimal FDs.
//
// Fdep scales well with the number of attributes but is quadratic in the
// number of tuples; the paper uses it as the canonical induction baseline
// that EulerFD's sampling is designed to beat on row scalability.
package fdep

import (
	"context"
	"time"

	"eulerfd/internal/cover"
	"eulerfd/internal/dataset"
	"eulerfd/internal/fdset"
	"eulerfd/internal/preprocess"
)

// Stats reports the work a discovery run performed.
type Stats struct {
	Rows, Cols    int
	PairsCompared int
	AgreeSets     int
	NcoverSize    int
	PcoverSize    int
	Total         time.Duration
}

// Discover returns the exact set of minimal, non-trivial FDs.
func Discover(rel *dataset.Relation) (*fdset.Set, Stats, error) {
	return DiscoverContext(context.Background(), rel)
}

// DiscoverContext is Discover under a context. Cancellation is
// cooperative, checked once per base row of the quadratic pairwise
// induction sweep.
func DiscoverContext(ctx context.Context, rel *dataset.Relation) (*fdset.Set, Stats, error) {
	if err := rel.Validate(); err != nil {
		return nil, Stats{}, err
	}
	return DiscoverEncodedContext(ctx, preprocess.Encode(rel))
}

// DiscoverEncoded is Discover over a pre-encoded relation.
func DiscoverEncoded(enc *preprocess.Encoded) (*fdset.Set, Stats) {
	fds, stats, _ := DiscoverEncodedContext(context.Background(), enc)
	return fds, stats
}

// DiscoverEncodedContext is DiscoverContext over a pre-encoded relation.
func DiscoverEncodedContext(ctx context.Context, enc *preprocess.Encoded) (*fdset.Set, Stats, error) {
	start := time.Now()
	ncols := len(enc.Attrs)
	stats := Stats{Rows: enc.NumRows, Cols: ncols}
	if ncols == 0 {
		stats.Total = time.Since(start)
		return fdset.NewSet(), stats, nil
	}

	// Pairwise comparison: collect every distinct agree set. The disagree
	// set of a pair is the complement of its agree set, so agree sets are
	// a lossless, deduplicated encoding of all witnessed non-FDs.
	seen := make(map[fdset.AttrSet]struct{})
	var agrees []fdset.AttrSet
	// rest[j-i-1] = j lets the batched base-vs-others kernel compare row i
	// against all following rows in one cache-friendly sweep.
	rest := make([]int32, enc.NumRows)
	for j := range rest {
		rest[j] = int32(j)
	}
	buf := make([]fdset.AttrSet, enc.NumRows)
	for i := 0; i < enc.NumRows; i++ {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		others := rest[i+1:]
		enc.AgreeSetsInto(i, others, buf)
		stats.PairsCompared += len(others)
		for _, a := range buf[:len(others)] {
			if _, dup := seen[a]; !dup {
				seen[a] = struct{}{}
				agrees = append(agrees, a)
			}
		}
	}
	stats.AgreeSets = len(agrees)

	// Negative cover: maximal non-FDs per RHS, split rank by attribute
	// frequency as in EulerFD's Algorithm 2.
	var nonFDs []fdset.FD
	for _, agree := range agrees {
		for a := 0; a < ncols; a++ {
			if !agree.Has(a) {
				nonFDs = append(nonFDs, fdset.FD{LHS: agree, RHS: a})
			}
		}
	}
	rank := cover.AttrFrequencyRank(ncols, nonFDs)
	ncover := cover.NewNCover(ncols, rank)
	ncover.AddAll(nonFDs)
	stats.NcoverSize = ncover.Size()

	// Inversion into the positive cover.
	pcover := cover.NewPCover(ncols, rank)
	pcover.InvertAll(ncover.FDs())
	out := pcover.FDs()
	stats.PcoverSize = out.Len()
	stats.Total = time.Since(start)
	return out, stats, nil
}
