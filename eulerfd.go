// Package eulerfd discovers functional dependencies (FDs) in relational
// data. It implements EulerFD (Lin et al., ICDE 2023), an efficient
// double-cycle approximate discovery algorithm, together with the exact
// and approximate baselines from the paper's evaluation: TANE, Fdep,
// HyFD, and AID-FD.
//
// # Quick start
//
//	rel, err := eulerfd.ReadCSVFile("people.csv", eulerfd.DefaultCSVOptions())
//	if err != nil { ... }
//	result, err := eulerfd.Discover(rel, eulerfd.DefaultOptions())
//	if err != nil { ... }
//	for _, fd := range result.FDs.Slice() {
//	    fmt.Println(fd.Format(rel.Attrs))
//	}
//
// EulerFD is approximate: it induces FDs from sampled violations and may
// return a slightly over-general result on adversarial data, but it is
// orders of magnitude faster than exact discovery on large relations.
// Use Exact for a guaranteed-exact answer (HyFD under the hood), or set
// Options.ExhaustWindows to make EulerFD itself exhaustive.
//
// Every discoverer is registered under a stable AlgoID: Algorithms lists
// them and DiscoverWith(ctx, id, rel) dispatches by ID. The Context
// variants (DiscoverContext, ExactContext) honor cancellation
// cooperatively at algorithm stage boundaries, so a run that completes
// is identical to an uncancelled one; cmd/fdserve builds an HTTP
// discovery service on top of them.
package eulerfd

import (
	"context"
	"fmt"
	"io"

	"eulerfd/internal/afd"
	"eulerfd/internal/algo"
	"eulerfd/internal/core"
	"eulerfd/internal/dataset"
	"eulerfd/internal/ensemble"
	"eulerfd/internal/fdset"
	"eulerfd/internal/infer"
	"eulerfd/internal/metrics"
	"eulerfd/internal/preprocess"
	"eulerfd/internal/quality"
	"eulerfd/internal/tane"
)

// Re-exported value types. FD is a dependency LHS → RHS over attribute
// indices; AttrSet is a bitset of attribute indices; Set is a collection
// of FDs; Relation is string-valued tabular data.
type (
	// FD is a functional dependency: the attributes in LHS jointly
	// determine the attribute RHS.
	FD = fdset.FD
	// AttrSet is a set of attribute indices.
	AttrSet = fdset.AttrSet
	// Set is a set of FDs.
	Set = fdset.Set
	// Relation is an in-memory relational instance.
	Relation = dataset.Relation
	// CSVOptions controls CSV parsing.
	CSVOptions = dataset.CSVOptions
	// Options configures the EulerFD algorithm.
	Options = core.Options
	// Stats describes the work performed by a discovery run.
	Stats = core.Stats
	// Progress is a point-in-time snapshot of a running discovery,
	// emitted at cycle boundaries.
	Progress = core.Progress
	// Observer receives Progress snapshots during a discovery run.
	Observer = core.Observer
	// Accuracy reports precision/recall/F1 against a reference FD set.
	Accuracy = metrics.Result
	// AlgoID names a registered discovery algorithm.
	AlgoID = algo.ID
	// AlgoInfo describes a registered discovery algorithm.
	AlgoInfo = algo.Info
	// Measure names an AFD error measure (g3, g1, pdep, tau).
	Measure = afd.Measure
	// ScoredFD pairs a dependency with its error under a Measure; 0
	// means the dependency holds exactly.
	ScoredFD = fdset.ScoredFD
	// ApproxStats describes the work performed by an approximate
	// (AFD) discovery run.
	ApproxStats = afd.Stats
)

// Supported AFD error measures, usable with DiscoverApprox.
const (
	// MeasureG3 is the minimum fraction of rows to remove for the FD to
	// hold exactly — the default measure.
	MeasureG3 = afd.G3
	// MeasureG1 is the fraction of ordered row pairs violating the FD.
	MeasureG1 = afd.G1
	// MeasurePdep is 1 − pdep(A|X), a pair-agreement probability.
	MeasurePdep = afd.Pdep
	// MeasureTau is 1 − τ(X→A), pdep normalized against A's marginal.
	MeasureTau = afd.Tau
	// MeasureRedundancy ranks dependencies by the redundancy they
	// explain (Wan & Han): 1 − red(X→A)/(n−1), oriented as an error.
	// Top-k only — it is not anti-monotone.
	MeasureRedundancy = afd.Redundancy
)

// ParseMeasure maps a user-supplied measure name (CLI flag, query
// parameter) to a Measure; an empty string selects g3.
func ParseMeasure(s string) (Measure, error) { return afd.ParseMeasure(s) }

// Registered algorithm IDs, usable with DiscoverWith and ExactContext.
const (
	AlgoEuler         = algo.Euler
	AlgoEulerEnsemble = algo.EulerEnsemble

	AlgoHyFD          = algo.HyFD
	AlgoTANE          = algo.TANE
	AlgoFun           = algo.Fun
	AlgoDfd           = algo.Dfd
	AlgoFdep          = algo.Fdep
	AlgoDepMiner      = algo.DepMiner
	AlgoFastFDs       = algo.FastFDs
	AlgoAIDFD         = algo.AIDFD
	AlgoKivinen       = algo.Kivinen
	AlgoAFDg3         = algo.AFDg3
	AlgoAFDTopK       = algo.AFDTopK
	AlgoAFDRedundancy = algo.AFDRedundancy
)

// Algorithms lists every registered discovery algorithm in a stable
// presentation order: EulerFD first, then the exact methods, then the
// approximate baselines.
func Algorithms() []AlgoInfo { return algo.List() }

// NewFD builds an FD from LHS attribute indices and an RHS attribute.
func NewFD(lhs []int, rhs int) FD { return fdset.NewFD(lhs, rhs) }

// NewAttrSet builds an attribute set from indices.
func NewAttrSet(attrs ...int) AttrSet { return fdset.NewAttrSet(attrs...) }

// NewRelation builds a validated relation from a schema and rows.
func NewRelation(name string, attrs []string, rows [][]string) (*Relation, error) {
	return dataset.New(name, attrs, rows)
}

// DefaultOptions returns the paper's EulerFD configuration: thresholds
// Th_Ncover = Th_Pcover = 0.01 and a six-queue MLFQ.
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultCSVOptions parses comma-separated data with a header row,
// treating "NULL" and "?" as nulls.
func DefaultCSVOptions() CSVOptions { return dataset.DefaultCSVOptions() }

// ReadCSV parses a relation from a reader.
func ReadCSV(name string, r io.Reader, opt CSVOptions) (*Relation, error) {
	return dataset.ReadCSV(name, r, opt)
}

// ReadCSVFile parses a relation from a CSV file.
func ReadCSVFile(path string, opt CSVOptions) (*Relation, error) {
	return dataset.ReadCSVFile(path, opt)
}

// WriteCSVFile writes a relation to a CSV file with a header row.
func WriteCSVFile(path string, r *Relation) error {
	return dataset.WriteCSVFile(path, r)
}

// Result is the outcome of a discovery run: the minimal non-trivial FDs
// found and execution statistics. The json tags define the wire shape
// shared by fddiscover -json, the fdserve HTTP service, and the
// benchmark artifacts: FDs serialize as {"lhs":[indices],"rhs":index}
// objects and Stats durations as integer nanoseconds.
type Result struct {
	// Algo is the registry ID of the algorithm that produced the result.
	Algo AlgoID `json:"algo,omitempty"`
	// FDs holds the minimal non-trivial dependencies found.
	FDs *Set `json:"fds"`
	// Stats describes the work performed.
	Stats Stats `json:"stats"`
}

// Incremental maintains an EulerFD result across relation mutations —
// the DMS deployment pattern, where relations grow by periodic imports
// and are repaired by deletes and row updates. Construct with
// NewIncremental, feed batches with Append, Delete, Update, or Apply,
// and read the current result with FDs. Every committed batch advances
// Version by one; a batch that fails validation or is cancelled before
// its commit point leaves the state untouched (only a cancelled first
// batch — the bootstrap — poisons the instance, see ErrPoisoned).
type Incremental = core.Incremental

// Mutation wire types for the versioned mutation log. A Mutation is one
// operation ("append", "delete", or "update"); a MutationBatch is an
// ordered list applied atomically by Incremental.Apply and by the
// fdserve POST /v1/sessions/{id}/mutations endpoint. The JSON tags
// (op, rows, ids, mutations) are the stable wire shape shared by the
// Go API and the HTTP service.
type (
	// Mutation is one mutation-log operation.
	Mutation = core.Mutation
	// MutationBatch is an atomically-applied ordered list of Mutations.
	MutationBatch = core.MutationBatch
	// MutationError reports the first invalid or unresolvable operation
	// of a rejected batch.
	MutationError = core.MutationError
)

// Mutation op vocabulary, the legal values of Mutation.Op.
const (
	OpAppend = core.OpAppend
	OpDelete = core.OpDelete
	OpUpdate = core.OpUpdate
)

// ErrPoisoned is returned by every method of an Incremental whose
// bootstrap batch was cancelled or failed mid-build: the covers are
// partially built and cannot answer. Discard the instance. Later
// (delta) batches never poison — they roll back instead.
var ErrPoisoned = core.ErrPoisoned

// AppendRows builds an append Mutation from rows.
func AppendRows(rows [][]string) Mutation { return core.AppendOp(rows) }

// DeleteRows builds a delete Mutation addressing rows by id (ids are
// assigned in append order, starting at 0; see Incremental.NextID).
func DeleteRows(ids ...int64) Mutation { return core.DeleteOp(ids...) }

// UpdateRows builds an update Mutation rewriting the row with ids[i] to
// rows[i]; ids keep their values.
func UpdateRows(ids []int64, rows [][]string) Mutation { return core.UpdateOp(ids, rows) }

// NewIncremental prepares incremental EulerFD discovery over a schema.
func NewIncremental(name string, attrs []string, opt Options) (*Incremental, error) {
	return core.NewIncremental(name, attrs, opt)
}

// Discover runs EulerFD on a relation with the given options.
func Discover(rel *Relation, opt Options) (Result, error) {
	return DiscoverContext(context.Background(), rel, opt)
}

// DiscoverContext runs EulerFD under a context. Cancellation is
// cooperative: it is honored at cycle boundaries, so a run that
// completes is byte-for-byte identical to an uncancelled one, and a
// context that is already done returns ctx.Err() before any sampling.
func DiscoverContext(ctx context.Context, rel *Relation, opt Options) (Result, error) {
	return DiscoverObserved(ctx, rel, opt, nil)
}

// DiscoverObserved is DiscoverContext with a Progress observer invoked
// synchronously at cycle boundaries; obs may be nil.
func DiscoverObserved(ctx context.Context, rel *Relation, opt Options, obs Observer) (Result, error) {
	fds, stats, err := core.DiscoverContext(ctx, rel, opt, obs)
	if err != nil {
		return Result{}, err
	}
	return Result{Algo: AlgoEuler, FDs: fds, Stats: stats}, nil
}

// DiscoverWith dispatches discovery through the algorithm registry with
// each algorithm's default configuration. Cancellation is cooperative,
// as in DiscoverContext.
func DiscoverWith(ctx context.Context, id AlgoID, rel *Relation) (*Set, error) {
	fds, _, err := algo.Run(ctx, id, rel, algo.DefaultTuning())
	return fds, err
}

// ExactContext returns the exact set of minimal non-trivial FDs using
// the registered exact algorithm id. It refuses approximate IDs (use
// DiscoverWith for those).
func ExactContext(ctx context.Context, rel *Relation, id AlgoID) (*Set, error) {
	info, ok := algo.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("eulerfd: unknown algorithm %q", id)
	}
	if !info.Exact {
		return nil, fmt.Errorf("eulerfd: algorithm %q is approximate, not exact", id)
	}
	return DiscoverWith(ctx, id, rel)
}

// Exact returns the exact set of minimal non-trivial FDs using the HyFD
// hybrid algorithm, the fastest exact method in this library.
func Exact(rel *Relation) (*Set, error) {
	return ExactContext(context.Background(), rel, AlgoHyFD)
}

// ExactTANE returns the exact FD set via level-wise lattice traversal.
// It scales well in rows but poorly in columns; exposed mainly for
// cross-checking and benchmarking.
func ExactTANE(rel *Relation) (*Set, error) {
	return ExactContext(context.Background(), rel, AlgoTANE)
}

// ExactFdep returns the exact FD set via full pairwise induction. It
// scales well in columns but quadratically in rows.
func ExactFdep(rel *Relation) (*Set, error) {
	return ExactContext(context.Background(), rel, AlgoFdep)
}

// ExactDfd returns the exact FD set via depth-first random-walk lattice
// traversal (Dfd).
func ExactDfd(rel *Relation) (*Set, error) {
	return ExactContext(context.Background(), rel, AlgoDfd)
}

// ExactFun returns the exact FD set via free-set lattice traversal (Fun).
func ExactFun(rel *Relation) (*Set, error) {
	return ExactContext(context.Background(), rel, AlgoFun)
}

// ExactDepMiner returns the exact FD set via agree-set maximization and
// levelwise minimal-transversal search (Dep-Miner).
func ExactDepMiner(rel *Relation) (*Set, error) {
	return ExactContext(context.Background(), rel, AlgoDepMiner)
}

// ExactFastFDs returns the exact FD set via depth-first minimal-cover
// search over difference sets (FastFDs).
func ExactFastFDs(rel *Relation) (*Set, error) {
	return ExactContext(context.Background(), rel, AlgoFastFDs)
}

// DiscoverTolerant finds the minimal dependencies violated by at most a
// maxErr fraction of tuples under the g₃ measure (error-tolerant FDs, as
// in the original TANE): with maxErr = 0 it is exact discovery, while
// small positive tolerances see through dirty rows. Distinct from
// approximate *discovery* (EulerFD, AID-FD), which returns classical FDs
// quickly at some risk of error.
func DiscoverTolerant(rel *Relation, maxErr float64) (*Set, error) {
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	fds, _ := tane.DiscoverApprox(preprocess.Encode(rel), maxErr)
	return fds, nil
}

// ApproxResult is the outcome of an approximate (AFD) discovery run:
// scored dependencies plus run statistics, with the same wire
// conventions as Result (ScoredFDs serialize as
// {"lhs":[indices],"rhs":index,"score":error} objects).
type ApproxResult struct {
	// Algo is AlgoAFDg3 (threshold mode) or AlgoAFDTopK (top-k mode).
	Algo AlgoID `json:"algo"`
	// Measure is the error measure the scores are under.
	Measure Measure `json:"measure"`
	// FDs holds the scored dependencies: canonical FD order in
	// threshold mode, best-error-first in top-k mode.
	FDs []ScoredFD `json:"fds"`
	// Stats describes the work performed.
	Stats ApproxStats `json:"stats"`
}

// DiscoverApprox finds approximate functional dependencies — FDs that
// hold up to an error budget on dirty data. Options.TopK selects the
// mode: 0 discovers every minimal dependency with error ≤
// Options.Epsilon (threshold mode, measure must be g3 or g1), while K >
// 0 ranks candidates seeded by an EulerFD run and returns the K with
// the lowest error (any measure). Options.Validate governs the field
// ranges; the remaining Options fields tune the seeding double cycle.
func DiscoverApprox(rel *Relation, measure Measure, opt Options) (ApproxResult, error) {
	return DiscoverApproxContext(context.Background(), rel, measure, opt)
}

// DiscoverApproxContext is DiscoverApprox under a context. Cancellation
// is cooperative: between double-cycle stages while seeding, between
// lattice levels in threshold mode, and every few hundred candidates
// while ranking.
func DiscoverApproxContext(ctx context.Context, rel *Relation, measure Measure, opt Options) (ApproxResult, error) {
	if err := rel.Validate(); err != nil {
		return ApproxResult{}, err
	}
	if err := opt.Validate(); err != nil {
		return ApproxResult{}, err
	}
	aopt := afd.DefaultOptions()
	aopt.Measure = measure
	aopt.Epsilon = opt.Epsilon
	aopt.TopK = opt.TopK
	aopt.Euler = opt
	enc := preprocess.Encode(rel)
	if opt.TopK > 0 {
		fds, stats, err := afd.TopK(ctx, enc, aopt)
		if err != nil {
			return ApproxResult{}, err
		}
		return ApproxResult{Algo: AlgoAFDTopK, Measure: aopt.Measure, FDs: fds, Stats: stats}, nil
	}
	fds, stats, err := afd.Threshold(ctx, enc, aopt)
	if err != nil {
		return ApproxResult{}, err
	}
	return ApproxResult{Algo: AlgoAFDg3, Measure: aopt.Measure, FDs: fds, Stats: stats}, nil
}

// Quality re-exports. The quality subsystem (internal/quality) turns a
// discovered cover into an actionable data-quality report: redundancy-
// ranked dependencies, per-dependency violating clusters with stable row
// ids, minimal repair plans, and normalization advice.
type (
	// QualityOptions bounds a quality report (ranked dependencies,
	// cluster examples, row ids per example).
	QualityOptions = quality.Options
	// QualityReport is the full report; its json tags are the pinned
	// wire shape served at /v1/sessions/{id}/quality and emitted by
	// fddiscover -quality.
	QualityReport = quality.Report
)

// DefaultQualityOptions returns the report bounds shared by the CLIs
// and fdserve.
func DefaultQualityOptions() QualityOptions { return quality.DefaultOptions() }

// AnalyzeQuality discovers a cover with EulerFD (opt tunes the double
// cycle) and composes the data-quality report over it: the cover seeds
// a redundancy-ranked top-k, each ranked near-FD gets its violating
// clusters and minimal repair plan, and the cover itself feeds the
// normalization advice. The report is deterministic for any
// Options.Workers value.
func AnalyzeQuality(rel *Relation, opt Options, qopt QualityOptions) (*QualityReport, error) {
	return AnalyzeQualityContext(context.Background(), rel, opt, qopt)
}

// AnalyzeQualityContext is AnalyzeQuality under a context. Cancellation
// is cooperative: at double-cycle stage boundaries while discovering the
// cover, and between pipeline stages and ranked dependencies while
// composing the report.
func AnalyzeQualityContext(ctx context.Context, rel *Relation, opt Options, qopt QualityOptions) (*QualityReport, error) {
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := qopt.Validate(); err != nil {
		return nil, err
	}
	enc := preprocess.Encode(rel)
	cover, _, err := core.DiscoverEncodedContext(ctx, enc, opt, nil)
	if err != nil {
		return nil, err
	}
	return quality.Analyze(ctx, enc, cover, nil, qopt)
}

// Ensemble re-exports. EulerFD is a randomized approximation once
// Options.Seed varies; an ensemble runs N seeded schedules and votes, so
// each reported FD carries a confidence instead of arriving in a flat set.
type (
	// EnsembleResult is a completed ensemble run: every voted candidate
	// in canonical order, plus run statistics. Majority() extracts the
	// strict-majority FD set.
	EnsembleResult = ensemble.Result
	// EnsembleFD is one voted candidate: an FD with the fraction of
	// member runs agreeing (Confidence, higher is better — unlike
	// ScoredFD's error score) and its exact g3 cross-check.
	EnsembleFD = ensemble.ScoredFD
	// EnsembleStats describes the work performed by an ensemble run.
	EnsembleStats = ensemble.Stats
	// EnsembleObserver receives (completed, total) member-run progress.
	EnsembleObserver = ensemble.Observer
)

// DiscoverEnsemble runs Options.Ensemble seeded EulerFD members
// concurrently (seeds derive from Options.Seed; member 0 runs the base
// seed itself, so Ensemble = 1 is exactly the plain seeded run) and
// votes: each candidate FD's confidence is the fraction of members whose
// minimal cover implies it, cross-checked against the exact g3 error on
// the full relation — a candidate with g3 > 0 provably does not hold and
// is flagged Suspect. Ensemble ≤ 1 runs a single member. The result is
// deterministic for any Options.Workers value.
func DiscoverEnsemble(rel *Relation, opt Options) (*EnsembleResult, error) {
	return DiscoverEnsembleContext(context.Background(), rel, opt, nil)
}

// DiscoverEnsembleContext is DiscoverEnsemble under a context with an
// optional progress observer (called after each member run completes;
// may be nil). Cancellation is cooperative at members' cycle boundaries;
// a cancelled ensemble returns ctx.Err() and no partial votes.
func DiscoverEnsembleContext(ctx context.Context, rel *Relation, opt Options, obs EnsembleObserver) (*EnsembleResult, error) {
	if err := rel.Validate(); err != nil {
		return nil, err
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return ensemble.Discover(ctx, preprocess.Encode(rel), ensemble.Config{Euler: opt, CrossCheck: true}, obs)
}

// ApproxAIDFD runs the AID-FD baseline with its default threshold.
func ApproxAIDFD(rel *Relation) (*Set, error) {
	return DiscoverWith(context.Background(), AlgoAIDFD, rel)
}

// ApproxKivinen runs the Kivinen-Mannila random-pair sampler with its
// default accuracy and confidence parameters.
func ApproxKivinen(rel *Relation) (*Set, error) {
	return DiscoverWith(context.Background(), AlgoKivinen, rel)
}

// Evaluate scores a discovered FD set against a reference (typically from
// Exact) as precision, recall, and F1.
func Evaluate(discovered, truth *Set) Accuracy {
	return metrics.Evaluate(discovered, truth)
}

// DependentsOf returns, for a sensitive attribute, every minimal LHS in
// fds that determines it — the DMS data-obfuscation primitive: any such
// LHS is a set of underlying sensitive attributes that must be protected
// alongside the labeled one.
func DependentsOf(fds *Set, sensitive int) []AttrSet {
	var out []AttrSet
	fds.ForEach(func(f FD) {
		if f.RHS == sensitive {
			out = append(out, f.LHS)
		}
	})
	return out
}

// FDDoc is the JSON-friendly rendering of one dependency, with attribute
// names resolved.
type FDDoc struct {
	LHS []string `json:"lhs"`
	RHS string   `json:"rhs"`
}

// Docs renders an FD set against a schema for JSON output, in the
// deterministic order of Set.Slice. Attribute indices outside the schema
// render as "#i".
func Docs(fds *Set, attrs []string) []FDDoc {
	name := func(i int) string {
		if i >= 0 && i < len(attrs) {
			return attrs[i]
		}
		return "#" + fmt.Sprint(i)
	}
	out := make([]FDDoc, 0, fds.Len())
	for _, f := range fds.Slice() {
		doc := FDDoc{RHS: name(f.RHS), LHS: []string{}}
		for _, a := range f.LHS.Attrs() {
			doc.LHS = append(doc.LHS, name(a))
		}
		out = append(out, doc)
	}
	return out
}

// Closure returns x⁺: every attribute determined by x under fds, for a
// schema of ncols attributes.
func Closure(fds *Set, x AttrSet, ncols int) AttrSet {
	return infer.Closure(fds, x, ncols)
}

// Implies reports whether fds logically imply x → a.
func Implies(fds *Set, x AttrSet, a, ncols int) bool {
	return infer.Implies(fds, x, a, ncols)
}

// IsSuperkey reports whether x determines the whole schema under fds.
func IsSuperkey(fds *Set, x AttrSet, ncols int) bool {
	return infer.IsSuperkey(fds, x, ncols)
}

// CandidateKeys enumerates the minimal keys of an ncols-attribute schema
// under fds. It panics beyond 24 attributes (the enumeration is
// exponential in the worst case).
func CandidateKeys(fds *Set, ncols int) []AttrSet {
	return infer.CandidateKeys(fds, ncols)
}

// BCNFViolation returns a discovered FD whose LHS is not a superkey, or
// ok = false when the schema is in Boyce-Codd Normal Form under fds.
func BCNFViolation(fds *Set, ncols int) (FD, bool) {
	return infer.BCNFViolation(fds, ncols)
}

// Decompose splits an ncols-attribute schema along a BCNF-violating FD
// into two lossless fragments (attribute sets).
func Decompose(fds *Set, violation FD, ncols int) (left, right AttrSet) {
	return infer.Decompose(fds, violation, ncols)
}
