package eulerfd_test

import (
	"fmt"
	"log"

	"eulerfd"
)

// ExampleDiscover runs EulerFD on the paper's patient table (Table I) and
// prints the discovered dependencies for the Medicine attribute.
func ExampleDiscover() {
	rel, err := eulerfd.NewRelation("patient",
		[]string{"Name", "Age", "BloodPressure", "Gender", "Medicine"},
		[][]string{
			{"Kelly", "60", "High", "Female", "drugA"},
			{"Jack", "32", "Low", "Male", "drugC"},
			{"Nancy", "28", "Normal", "Female", "drugX"},
			{"Lily", "49", "Low", "Female", "drugY"},
			{"Ophelia", "32", "Normal", "Female", "drugX"},
			{"Anna", "49", "Normal", "Female", "drugX"},
			{"Esther", "32", "Low", "Female", "drugC"},
			{"Richard", "41", "Normal", "Male", "drugY"},
			{"Taylor", "25", "Low", "Gender-queer", "drugC"},
		})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eulerfd.Discover(rel, eulerfd.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	medicine := rel.AttrIndex("Medicine")
	for _, fd := range res.FDs.Slice() {
		if fd.RHS == medicine {
			fmt.Println(fd.Format(rel.Attrs))
		}
	}
	// Output:
	// [Name] -> Medicine
	// [Age BloodPressure] -> Medicine
}

// ExampleEvaluate scores an approximate result against the exact one.
func ExampleEvaluate() {
	rel, err := eulerfd.NewRelation("t", []string{"A", "B"},
		[][]string{{"1", "x"}, {"2", "y"}, {"1", "x"}})
	if err != nil {
		log.Fatal(err)
	}
	res, _ := eulerfd.Discover(rel, eulerfd.DefaultOptions())
	exact, _ := eulerfd.Exact(rel)
	acc := eulerfd.Evaluate(res.FDs, exact)
	fmt.Printf("F1 = %.3f\n", acc.F1)
	// Output:
	// F1 = 1.000
}
