package eulerfd

// Benchmarks regenerating (at reduced scale) every table and figure of the
// paper's evaluation, plus ablations of the design decisions called out in
// DESIGN.md. The full paper-style output comes from `go run ./cmd/fdbench
// -exp all`; these testing.B entry points exist so `go test -bench=.`
// exercises the same code paths with stable, comparable timings.

import (
	"fmt"
	"math/rand"
	"testing"

	"eulerfd/internal/aidfd"
	"eulerfd/internal/core"
	"eulerfd/internal/cover"
	"eulerfd/internal/datasets"
	"eulerfd/internal/depminer"
	"eulerfd/internal/dfd"
	"eulerfd/internal/fastfds"
	"eulerfd/internal/fdep"
	"eulerfd/internal/fdset"
	"eulerfd/internal/fun"
	"eulerfd/internal/gen"
	"eulerfd/internal/hyfd"
	"eulerfd/internal/preprocess"
	"eulerfd/internal/tane"
)

// encCache avoids re-encoding registry datasets across benchmarks.
var encCache = map[string]*preprocess.Encoded{}

func encoded(b *testing.B, name string) *preprocess.Encoded {
	b.Helper()
	if e, ok := encCache[name]; ok {
		return e
	}
	d, err := datasets.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	e := preprocess.Encode(d.Build())
	encCache[name] = e
	return e
}

// BenchmarkTable3 covers Table III: each sub-benchmark is one
// (algorithm, dataset) cell on a representative spread of the registry —
// a small UCI table, a mid-size one, an FD-dense narrow table, and a tall
// one. Wide datasets are exercised by the figure benchmarks below.
func BenchmarkTable3(b *testing.B) {
	names := []string{"iris", "abalone", "hepatitis", "lineitem"}
	for _, name := range names {
		enc := encoded(b, name)
		if name == "lineitem" {
			// Bench the 5000-row head so the exact baselines keep each
			// iteration in seconds; the full height runs in fdbench.
			d, _ := datasets.ByName(name)
			h, _ := d.Build().Head(5000)
			enc = preprocess.Encode(h)
		}
		b.Run(name+"/Tane", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tane.DiscoverEncoded(enc)
			}
		})
		b.Run(name+"/Fdep", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fdep.DiscoverEncoded(enc)
			}
		})
		b.Run(name+"/HyFD", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hyfd.DiscoverEncoded(enc, hyfd.DefaultOptions())
			}
		})
		b.Run(name+"/AID-FD", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				aidfd.DiscoverEncoded(enc, aidfd.DefaultOptions())
			}
		})
		b.Run(name+"/EulerFD", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.DiscoverEncoded(enc, core.DefaultOptions())
			}
		})
	}
}

// BenchmarkFig6RowScalabilityFDReduced sweeps relation height on the
// fd-reduced-30 stand-in (Figure 6) for EulerFD.
func BenchmarkFig6RowScalabilityFDReduced(b *testing.B) {
	d, _ := datasets.ByName("fd-reduced-30")
	base := d.Build()
	for i := 1; i <= 5; i++ {
		rows := base.NumRows() * i / 5
		h, _ := base.Head(rows)
		enc := preprocess.Encode(h)
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.DiscoverEncoded(enc, core.DefaultOptions())
			}
		})
	}
}

// BenchmarkFig7RowScalabilityLineitem doubles relation height on the
// lineitem stand-in (Figure 7) for EulerFD vs AID-FD.
func BenchmarkFig7RowScalabilityLineitem(b *testing.B) {
	d, _ := datasets.ByName("lineitem")
	base := d.Build()
	for n := base.NumRows() / 8; n <= base.NumRows(); n *= 2 {
		h, _ := base.Head(n)
		enc := preprocess.Encode(h)
		b.Run(fmt.Sprintf("rows=%d/EulerFD", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.DiscoverEncoded(enc, core.DefaultOptions())
			}
		})
		b.Run(fmt.Sprintf("rows=%d/AID-FD", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				aidfd.DiscoverEncoded(enc, aidfd.DefaultOptions())
			}
		})
	}
}

// BenchmarkFig8ColScalabilityPlista sweeps column prefixes of plista
// (Figure 8) for EulerFD.
func BenchmarkFig8ColScalabilityPlista(b *testing.B) {
	benchColScalability(b, "plista")
}

// BenchmarkFig9ColScalabilityUniprot sweeps column prefixes of uniprot
// (Figure 9) for EulerFD.
func BenchmarkFig9ColScalabilityUniprot(b *testing.B) {
	benchColScalability(b, "uniprot")
}

func benchColScalability(b *testing.B, name string) {
	d, _ := datasets.ByName(name)
	base := d.Build()
	for c := 10; c <= 60 && c <= base.NumCols(); c += 10 {
		p, _ := base.Prefix(c)
		enc := preprocess.Encode(p)
		b.Run(fmt.Sprintf("cols=%d", c), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.DiscoverEncoded(enc, core.DefaultOptions())
			}
		})
	}
}

// BenchmarkFig10MLFQ sweeps the MLFQ queue count (Figure 10, Table IV
// capa ranges) on the adult stand-in.
func BenchmarkFig10MLFQ(b *testing.B) {
	enc := encoded(b, "adult")
	for q := 1; q <= 7; q++ {
		opt := core.DefaultOptions()
		opt.NumQueues = q
		b.Run(fmt.Sprintf("queues=%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.DiscoverEncoded(enc, opt)
			}
		})
	}
}

// BenchmarkFig11Thresholds sweeps Th_Ncover = Th_Pcover (Figure 11) on
// the ncvoter stand-in.
func BenchmarkFig11Thresholds(b *testing.B) {
	enc := encoded(b, "ncvoter")
	for _, th := range []float64{0.1, 0.01, 0.001, 0} {
		opt := core.DefaultOptions()
		opt.ThNcover, opt.ThPcover = th, th
		b.Run(fmt.Sprintf("th=%v", th), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.DiscoverEncoded(enc, opt)
			}
		})
	}
}

// BenchmarkTable5DMSFleet runs EulerFD vs AID-FD on representative DMS
// fleet shapes (Table V buckets).
func BenchmarkTable5DMSFleet(b *testing.B) {
	shapes := []struct{ rows, cols int }{
		{64, 8}, {512, 32}, {4096, 8}, {512, 72},
	}
	for _, s := range shapes {
		rel := gen.DMSShape(fmt.Sprintf("dms-%dx%d", s.rows, s.cols), s.rows, s.cols, int64(s.rows*31+s.cols))
		enc := preprocess.Encode(rel)
		b.Run(fmt.Sprintf("%dx%d/EulerFD", s.rows, s.cols), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.DiscoverEncoded(enc, core.DefaultOptions())
			}
		})
		b.Run(fmt.Sprintf("%dx%d/AID-FD", s.rows, s.cols), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				aidfd.DiscoverEncoded(enc, aidfd.DefaultOptions())
			}
		})
	}
}

// --- Ablations (design decisions called out in DESIGN.md) ---

// ablationFamily builds a realistic dense LHS family from hepatitis
// non-FDs for the trie ablations.
func ablationFamily(b *testing.B) ([]fdset.AttrSet, int) {
	enc := encoded(b, "hepatitis")
	m := len(enc.Attrs)
	seen := map[fdset.AttrSet]struct{}{}
	var sets []fdset.AttrSet
	for i := 0; i < enc.NumRows; i++ {
		for j := i + 1; j < enc.NumRows; j++ {
			a := enc.AgreeSet(i, j)
			if _, dup := seen[a]; !dup {
				seen[a] = struct{}{}
				sets = append(sets, a)
			}
		}
	}
	return sets, m
}

// BenchmarkAblationTriePruning compares the inversion hot path — the
// candidate minimality query against a large positive-cover antichain —
// on the extended binary trie versus a linear scan of the same family.
// The family is a real Pcover tree of the plista stand-in (~10k minimal
// LHSs for one RHS): exactly the structure whose queries dominate
// FD-dense datasets. Small families favor the linear scan; this is the
// regime the trie exists for.
func BenchmarkAblationTriePruning(b *testing.B) {
	enc := encoded(b, "plista")
	m := len(enc.Attrs)
	fds, _ := core.DiscoverEncoded(enc, core.DefaultOptions())
	// Collect the RHS-0 cover as the benchmark family.
	var sets []fdset.AttrSet
	fds.ForEach(func(f fdset.FD) {
		if f.RHS == 0 {
			sets = append(sets, f.LHS)
		}
	})
	tree := cover.NewTree(nil)
	for _, s := range sets {
		tree.Add(s)
	}
	b.Logf("family size: %d minimal LHSs", len(sets))
	// Probes are inversion candidates: a stored LHS extended by one
	// attribute — the exact shape ContainsSubsetWithAttr is asked about.
	r := rand.New(rand.NewSource(5))
	type probe struct {
		s    fdset.AttrSet
		attr int
	}
	probes := make([]probe, 1024)
	for i := range probes {
		base := sets[r.Intn(len(sets))]
		a := r.Intn(m)
		probes[i] = probe{s: base.With(a), attr: a}
	}
	b.Run("trie", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := probes[i%len(probes)]
			tree.ContainsSubsetWithAttr(p.s, p.attr)
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := probes[i%len(probes)]
			for _, s := range sets {
				if s.Has(p.attr) && s.IsSubsetOf(p.s) {
					break
				}
			}
		}
	})
}

// BenchmarkAblationAgreeSetDedup compares negative-cover construction
// from a raw (duplicate-bearing) non-FD stream against the deduplicated
// agree-set stream EulerFD's sampler emits.
func BenchmarkAblationAgreeSetDedup(b *testing.B) {
	enc := encoded(b, "hepatitis")
	m := len(enc.Attrs)
	var raw, deduped []fdset.FD
	seen := map[fdset.AttrSet]struct{}{}
	for i := 0; i < enc.NumRows; i++ {
		for j := i + 1; j < enc.NumRows; j++ {
			agree := enc.AgreeSet(i, j)
			_, dup := seen[agree]
			for a := 0; a < m; a++ {
				if !agree.Has(a) {
					f := fdset.FD{LHS: agree, RHS: a}
					raw = append(raw, f)
					if !dup {
						deduped = append(deduped, f)
					}
				}
			}
			seen[agree] = struct{}{}
		}
	}
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nc := cover.NewNCover(m, nil)
			nc.AddAll(raw)
		}
	})
	b.Run("deduped", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nc := cover.NewNCover(m, nil)
			nc.AddAll(deduped)
		}
	})
}

// BenchmarkAblationPaperInversion compares the refined inversion (spawn
// only attributes outside the non-FD's LHS) against the literal Algorithm
// 3 expansion, which re-finds and re-removes intermediate candidates.
func BenchmarkAblationPaperInversion(b *testing.B) {
	sets, m := ablationFamily(b)
	nc := cover.NewNCover(m, nil)
	for _, s := range sets {
		for a := 0; a < m; a++ {
			if !s.Has(a) {
				nc.Add(fdset.FD{LHS: s, RHS: a})
			}
		}
	}
	nonFDs := nc.FDs()
	b.Run("refined", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pc := cover.NewPCover(m, nil)
			for _, f := range nonFDs {
				pc.Invert(f)
			}
		}
	})
	b.Run("literal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pc := cover.NewPCover(m, nil)
			for _, f := range nonFDs {
				pc.InvertLiteral(f)
			}
		}
	})
}

// BenchmarkAblationIncrementalInversion compares EulerFD's incremental
// second cycle (invert only the non-FDs discovered since the previous
// inversion) against rebuilding the positive cover from scratch at every
// cycle, on a three-way split of the hepatitis negative cover.
func BenchmarkAblationIncrementalInversion(b *testing.B) {
	sets, m := ablationFamily(b)
	nc := cover.NewNCover(m, nil)
	for _, s := range sets {
		for a := 0; a < m; a++ {
			if !s.Has(a) {
				nc.Add(fdset.FD{LHS: s, RHS: a})
			}
		}
	}
	nonFDs := nc.FDs()
	third := len(nonFDs) / 3
	batches := [][]fdset.FD{nonFDs[:third], nonFDs[third : 2*third], nonFDs[2*third:]}
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pc := cover.NewPCover(m, nil)
			for _, batch := range batches {
				pc.InvertAll(batch)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var last *cover.PCover
			for k := range batches {
				last = cover.NewPCover(m, nil)
				for _, batch := range batches[:k+1] {
					last.InvertAll(batch)
				}
			}
			_ = last
		}
	})
}

// BenchmarkAblationDynamicCapaRanges compares the static Table IV capa
// ladder against the runtime-retuned ladder (the paper's future-work
// extension, Options.DynamicCapaRanges) on the adult stand-in.
func BenchmarkAblationDynamicCapaRanges(b *testing.B) {
	enc := encoded(b, "adult")
	static := core.DefaultOptions()
	dynamic := core.DefaultOptions()
	dynamic.DynamicCapaRanges = true
	b.Run("static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.DiscoverEncoded(enc, static)
		}
	})
	b.Run("dynamic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.DiscoverEncoded(enc, dynamic)
		}
	})
}

// BenchmarkExactAlgorithms races every exact algorithm in the library on
// the abalone stand-in — a wider view than Table III's five columns,
// covering all four families of Section II-A.
func BenchmarkExactAlgorithms(b *testing.B) {
	enc := encoded(b, "abalone")
	algos := map[string]func(){
		"TANE":     func() { tane.DiscoverEncoded(enc) },
		"Fun":      func() { fun.DiscoverEncoded(enc) },
		"Dfd":      func() { dfd.DiscoverEncoded(enc) },
		"Fdep":     func() { fdep.DiscoverEncoded(enc) },
		"DepMiner": func() { depminer.DiscoverEncoded(enc) },
		"FastFDs":  func() { fastfds.DiscoverEncoded(enc) },
		"HyFD":     func() { hyfd.DiscoverEncoded(enc, hyfd.DefaultOptions()) },
	}
	for _, name := range []string{"TANE", "Fun", "Dfd", "Fdep", "DepMiner", "FastFDs", "HyFD"} {
		run := algos[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run()
			}
		})
	}
}
